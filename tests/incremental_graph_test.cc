// Differential harness for streaming DB→graph maintenance (the PR's
// headline deliverable): any append sequence replayed incrementally through
// StreamingDbGraph must produce a graph — node features, node times,
// per-node neighbor order, edge times — and sampler output bit-identical
// to a from-scratch batch build of the same database at the same cutoff.
// Covers the append-log contract on Database, batch-split invariance,
// compaction, the kAppendApply/kCompact fault-recovery paths, CSR
// structural invariants, and a seeded ~1k-operation schedule fuzzer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/fault_injection.h"
#include "core/rng.h"
#include "db2graph/graph_builder.h"
#include "db2graph/streaming.h"
#include "graph/hetero_graph.h"
#include "relational/append_log.h"
#include "relational/database.h"
#include "sampler/neighbor_sampler.h"

namespace relgraph {
namespace {

/// Every test starts and ends with a disarmed fault injector.
class StreamingTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// ------------------------------------------------------------- mini world
//
// users(id PK, country, age)                      -- static dimension
// products(id PK, price)                          -- static dimension
// orders(id PK, user_id FK, product_id FK, total, ts TIME)

Database MakeStreamDb() {
  Database db("stream");

  TableSchema users("users");
  users.AddColumn("id", DataType::kInt64, false)
      .AddColumn("country", DataType::kString)
      .AddColumn("age", DataType::kFloat64)
      .SetPrimaryKey("id");
  Table* ut = db.AddTable(users).value();
  EXPECT_TRUE(
      ut->AppendRow({Value(int64_t{0}), Value("be"), Value(30.0)}).ok());
  EXPECT_TRUE(
      ut->AppendRow({Value(int64_t{1}), Value("nl"), Value(40.0)}).ok());
  EXPECT_TRUE(
      ut->AppendRow({Value(int64_t{2}), Value("be"), Value(55.0)}).ok());

  TableSchema products("products");
  products.AddColumn("id", DataType::kInt64, false)
      .AddColumn("price", DataType::kFloat64)
      .SetPrimaryKey("id");
  Table* pt = db.AddTable(products).value();
  EXPECT_TRUE(pt->AppendRow({Value(int64_t{0}), Value(9.5)}).ok());
  EXPECT_TRUE(pt->AppendRow({Value(int64_t{1}), Value(19.0)}).ok());

  TableSchema orders("orders");
  orders.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64)
      .AddColumn("product_id", DataType::kInt64)
      .AddColumn("total", DataType::kFloat64)
      .AddColumn("ts", DataType::kTimestamp)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .AddForeignKey("product_id", "products")
      .SetTimeColumn("ts");
  Table* ot = db.AddTable(orders).value();
  EXPECT_TRUE(ot->AppendRow({Value(int64_t{0}), Value(int64_t{0}),
                             Value(int64_t{0}), Value(9.5), Value::Time(10)})
                  .ok());
  EXPECT_TRUE(ot->AppendRow({Value(int64_t{1}), Value(int64_t{1}),
                             Value(int64_t{1}), Value(19.0), Value::Time(20)})
                  .ok());
  EXPECT_TRUE(ot->AppendRow({Value(int64_t{2}), Value(int64_t{0}),
                             Value(int64_t{1}), Value(19.0), Value::Time(30)})
                  .ok());
  return db;
}

std::vector<Value> UserRow(int64_t id, const std::string& country,
                           double age) {
  return {Value(id), Value(country), Value(age)};
}

std::vector<Value> ProductRow(int64_t id, double price) {
  return {Value(id), Value(price)};
}

std::vector<Value> OrderRow(int64_t id, int64_t user, int64_t product,
                            double total, Timestamp ts) {
  return {Value(id), Value(user), Value(product), Value(total),
          Value::Time(ts)};
}

// ----------------------------------------------------- equality predicates

/// Full neighbor list of one node in canonical order (segments 0..n-1).
std::vector<std::pair<int64_t, Timestamp>> FullNeighbors(
    const HeteroGraph& g, EdgeTypeId e, int64_t node) {
  std::vector<std::pair<int64_t, Timestamp>> out;
  for (int32_t s = 0; s < g.num_segments(e); ++s) {
    const int64_t* dst;
    const Timestamp* times;
    int64_t count;
    g.SegmentNeighbors(e, s, node, &dst, &times, &count);
    for (int64_t i = 0; i < count; ++i) out.emplace_back(dst[i], times[i]);
  }
  return out;
}

/// Asserts `got` and `want` are bit-identical in content: node types,
/// counts, features (exact float compare), node times, edge types, and
/// per-node neighbor order with edge times — regardless of segment layout.
void ExpectGraphsBitIdentical(const HeteroGraph& got, const HeteroGraph& want,
                              const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(got.num_node_types(), want.num_node_types());
  for (NodeTypeId t = 0; t < got.num_node_types(); ++t) {
    SCOPED_TRACE("node type " + got.node_type_name(t));
    ASSERT_EQ(got.node_type_name(t), want.node_type_name(t));
    ASSERT_EQ(got.num_nodes(t), want.num_nodes(t));
    const Tensor& gf = got.node_features(t);
    const Tensor& wf = want.node_features(t);
    ASSERT_EQ(gf.rows(), wf.rows());
    ASSERT_EQ(gf.cols(), wf.cols());
    for (int64_t i = 0; i < gf.numel(); ++i) {
      ASSERT_EQ(gf.data()[i], wf.data()[i]) << "feature element " << i;
    }
    for (int64_t n = 0; n < got.num_nodes(t); ++n) {
      ASSERT_EQ(got.node_time(t, n), want.node_time(t, n)) << "node " << n;
    }
  }
  ASSERT_EQ(got.num_edge_types(), want.num_edge_types());
  for (EdgeTypeId e = 0; e < got.num_edge_types(); ++e) {
    SCOPED_TRACE("edge type " + got.edge_type_name(e));
    ASSERT_EQ(got.edge_type_name(e), want.edge_type_name(e));
    ASSERT_EQ(got.edge_src_type(e), want.edge_src_type(e));
    ASSERT_EQ(got.edge_dst_type(e), want.edge_dst_type(e));
    ASSERT_EQ(got.num_edges(e), want.num_edges(e));
    const int64_t n = got.num_nodes(got.edge_src_type(e));
    for (int64_t node = 0; node < n; ++node) {
      ASSERT_EQ(FullNeighbors(got, e, node), FullNeighbors(want, e, node))
          << "neighbor list of node " << node;
    }
  }
}

/// Structural invariants of the segmented CSR: window bounds, monotone
/// offsets, in-range endpoints, and edge counts consistent with both the
/// segment sizes and the per-node degrees.
void ExpectCsrInvariants(const HeteroGraph& g) {
  for (EdgeTypeId e = 0; e < g.num_edge_types(); ++e) {
    SCOPED_TRACE("edge type " + g.edge_type_name(e));
    const int64_t num_src = g.num_nodes(g.edge_src_type(e));
    const int64_t num_dst = g.num_nodes(g.edge_dst_type(e));
    int64_t total = 0;
    for (int32_t s = 0; s < g.num_segments(e); ++s) {
      SCOPED_TRACE("segment " + std::to_string(s));
      const CsrSegment& seg = g.segment(e, s);
      ASSERT_GE(seg.src_begin, 0);
      ASSERT_GE(static_cast<int64_t>(seg.offsets.size()), 1);
      ASSERT_LE(seg.src_end(), num_src);
      ASSERT_EQ(seg.offsets.front(), 0);
      for (size_t i = 1; i < seg.offsets.size(); ++i) {
        ASSERT_LE(seg.offsets[i - 1], seg.offsets[i]);
      }
      ASSERT_EQ(seg.offsets.back(), seg.num_edges());
      ASSERT_EQ(seg.neighbors.size(), seg.times.size());
      for (int64_t d : seg.neighbors) {
        ASSERT_GE(d, 0);
        ASSERT_LT(d, num_dst);
      }
      total += seg.num_edges();
    }
    ASSERT_EQ(total, g.num_edges(e));
    int64_t degree_sum = 0;
    for (int64_t node = 0; node < num_src; ++node) {
      degree_sum += g.Degree(e, node);
    }
    ASSERT_EQ(degree_sum, g.num_edges(e));
  }
}

void ExpectSubgraphsEqual(const Subgraph& a, const Subgraph& b) {
  ASSERT_EQ(a.frontiers.size(), b.frontiers.size());
  for (size_t f = 0; f < a.frontiers.size(); ++f) {
    SCOPED_TRACE("frontier " + std::to_string(f));
    ASSERT_EQ(a.frontiers[f].nodes, b.frontiers[f].nodes);
    ASSERT_EQ(a.frontiers[f].cutoffs, b.frontiers[f].cutoffs);
  }
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (size_t k = 0; k < a.blocks.size(); ++k) {
    SCOPED_TRACE("block layer " + std::to_string(k));
    ASSERT_EQ(a.blocks[k].size(), b.blocks[k].size());
    for (size_t j = 0; j < a.blocks[k].size(); ++j) {
      ASSERT_EQ(a.blocks[k][j].edge_type, b.blocks[k][j].edge_type);
      ASSERT_EQ(a.blocks[k][j].target_local, b.blocks[k][j].target_local);
      ASSERT_EQ(a.blocks[k][j].source_local, b.blocks[k][j].source_local);
    }
  }
}

/// The differential gate: the stream's current epoch vs a from-scratch
/// batch build of the SAME database under the frozen plans.
void ExpectMatchesRebuild(const Database& db, const StreamingDbGraph& stream,
                          const std::string& context) {
  auto rebuilt = BuildDbGraph(db, stream.RebuildOptions());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  ExpectGraphsBitIdentical(*stream.graph(), rebuilt.value().graph, context);
}

// -------------------------------------------------- Database::ApplyAppend

TEST_F(StreamingTest, AppendLogRecordsAcceptedRowsInOrder) {
  Database db = MakeStreamDb();
  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));
  batch.Add("orders", OrderRow(3, 3, 0, 9.5, 40));
  batch.Add("orders", OrderRow(4, 1, 1, 19.0, 50));

  auto outcome = db.ApplyAppend(batch);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().rows_applied, 3);
  EXPECT_EQ(outcome.value().rows_quarantined, 0);
  EXPECT_TRUE(outcome.value().clean());

  const auto& ranges = outcome.value().applied_ranges;
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges.at("users"), (std::pair<int64_t, int64_t>{3, 4}));
  EXPECT_EQ(ranges.at("orders"), (std::pair<int64_t, int64_t>{3, 5}));

  const auto& log = db.append_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].seq, 1);
  EXPECT_EQ(log[0].table, "users");
  EXPECT_EQ(log[0].row, 3);
  EXPECT_EQ(log[0].time, kNoTimestamp);
  EXPECT_EQ(log[1].seq, 2);
  EXPECT_EQ(log[1].table, "orders");
  EXPECT_EQ(log[1].row, 3);
  EXPECT_EQ(log[1].time, 40);
  EXPECT_EQ(log[2].seq, 3);
  EXPECT_EQ(db.append_seq(), 3);

  // A second batch continues the global sequence.
  AppendBatch more;
  more.Add("orders", OrderRow(5, 0, 0, 9.5, 60));
  ASSERT_TRUE(db.ApplyAppend(more).ok());
  ASSERT_EQ(db.append_log().size(), 4u);
  EXPECT_EQ(db.append_log()[3].seq, 4);
}

TEST_F(StreamingTest, StrictRejectionLeavesDatabaseUntouched) {
  Database db = MakeStreamDb();
  const int64_t users_before = db.table("users").num_rows();
  const int64_t orders_before = db.table("orders").num_rows();

  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));       // fine on its own
  batch.Add("orders", OrderRow(2, 0, 0, 9.5, 40));  // duplicate PK 2

  auto outcome = db.ApplyAppend(batch);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("row 2"), std::string::npos)
      << outcome.status().message();
  EXPECT_NE(outcome.status().message().find("orders"), std::string::npos);

  // ZERO mutation: the earlier valid row did not land either.
  EXPECT_EQ(db.table("users").num_rows(), users_before);
  EXPECT_EQ(db.table("orders").num_rows(), orders_before);
  EXPECT_TRUE(db.append_log().empty());
  EXPECT_EQ(db.append_seq(), 0);
}

TEST_F(StreamingTest, UnknownTableIsHardErrorEvenInLenientMode) {
  Database db = MakeStreamDb();
  AppendBatch batch;
  batch.Add("ghosts", {Value(int64_t{1})});
  IngestOptions lenient;
  lenient.mode = IngestMode::kLenient;
  auto outcome = db.ApplyAppend(batch, lenient);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("ghosts"), std::string::npos);
  EXPECT_TRUE(db.append_log().empty());
}

TEST_F(StreamingTest, LenientQuarantinesOffendersAndAppliesRest) {
  Database db = MakeStreamDb();
  IngestOptions lenient;
  lenient.mode = IngestMode::kLenient;

  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));         // ok
  batch.Add("users", UserRow(1, "de", 33.0));         // duplicate PK
  batch.Add("orders", OrderRow(3, 99, 0, 9.5, 40));   // dangling user FK
  batch.Add("orders", OrderRow(4, 3, 1, 19.0, 50));   // FK to batch row: ok
  batch.Add("orders", {Value(int64_t{5}), Value(int64_t{0})});  // arity

  auto outcome = db.ApplyAppend(batch, lenient);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().rows_applied, 2);
  EXPECT_EQ(outcome.value().rows_quarantined, 3);
  EXPECT_FALSE(outcome.value().clean());
  EXPECT_EQ(outcome.value().report.TotalIssues(), 3);

  // Quarantined rows never landed; accepted ones are contiguous.
  EXPECT_EQ(db.table("users").num_rows(), 4);
  EXPECT_EQ(db.table("orders").num_rows(), 4);
  ASSERT_EQ(db.append_log().size(), 2u);
  EXPECT_EQ(db.append_log()[0].table, "users");
  EXPECT_EQ(db.append_log()[1].table, "orders");
}

TEST_F(StreamingTest, ForwardReferenceWithinBatchDangles) {
  Database db = MakeStreamDb();
  IngestOptions lenient;
  lenient.mode = IngestMode::kLenient;

  // The order references user 3, which only appears LATER in the batch —
  // the stream is an ordered log, so the FK dangles at validation time.
  AppendBatch batch;
  batch.Add("orders", OrderRow(3, 3, 0, 9.5, 40));
  batch.Add("users", UserRow(3, "fr", 28.0));

  auto outcome = db.ApplyAppend(batch, lenient);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().rows_applied, 1);
  EXPECT_EQ(outcome.value().rows_quarantined, 1);
  EXPECT_EQ(db.table("orders").num_rows(), 3);
  EXPECT_EQ(db.table("users").num_rows(), 4);
}

// ------------------------------------------------------- StreamingDbGraph

StreamingOptions LenientStream(int64_t compact_threshold = 8) {
  StreamingOptions o;
  o.ingest.mode = IngestMode::kLenient;
  o.build.lenient = true;
  o.compact_threshold = compact_threshold;
  return o;
}

TEST_F(StreamingTest, CreateValidatesArguments) {
  EXPECT_FALSE(StreamingDbGraph::Create(nullptr).ok());
  Database db = MakeStreamDb();
  StreamingOptions bad;
  bad.compact_threshold = 0;
  EXPECT_FALSE(StreamingDbGraph::Create(&db, bad).ok());
}

TEST_F(StreamingTest, BaseEpochMatchesBatchBuild) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  ExpectMatchesRebuild(db, *stream, "base epoch");
  ExpectCsrInvariants(*stream->graph());
  EXPECT_EQ(stream->epochs_published(), 1);
}

TEST_F(StreamingTest, IncrementalEqualsRebuildAfterAppends) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db).value();

  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));
  batch.Add("products", ProductRow(2, 42.0));
  batch.Add("orders", OrderRow(3, 3, 2, 42.0, 40));
  batch.Add("orders", OrderRow(4, 0, 0, 9.5, 50));

  auto result = stream->Apply(batch);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().outcome.rows_applied, 4);
  EXPECT_FALSE(result.value().recovered);
  EXPECT_EQ(result.value().graph, stream->graph());

  // The delta names the pre-existing nodes whose adjacency changed: user 0
  // and product 0 gained reverse edges from order 4; user 3 / product 2
  // are NEW nodes, so they are not "touched".
  const GraphDelta& delta = result.value().delta;
  const auto& types = stream->table_type();
  ASSERT_EQ(delta.first_new_node.size(),
            static_cast<size_t>(stream->graph()->num_node_types()));
  EXPECT_EQ(delta.first_new_node[types.at("users")], 3);
  EXPECT_EQ(delta.first_new_node[types.at("products")], 2);
  EXPECT_EQ(delta.first_new_node[types.at("orders")], 3);
  EXPECT_EQ(delta.touched[types.at("users")], (std::vector<int64_t>{0}));
  EXPECT_EQ(delta.touched[types.at("products")], (std::vector<int64_t>{0}));
  EXPECT_TRUE(delta.touched[types.at("orders")].empty());
  EXPECT_EQ(delta.max_event_time, 50);

  ExpectMatchesRebuild(db, *stream, "after one batch");
  ExpectCsrInvariants(*stream->graph());
}

TEST_F(StreamingTest, OldEpochsAreImmutableSnapshots) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  std::shared_ptr<const HeteroGraph> base = stream->graph();
  const int64_t base_users = base->num_nodes(0);
  const int64_t base_edges = base->TotalEdges();

  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));
  batch.Add("orders", OrderRow(3, 3, 0, 9.5, 40));
  ASSERT_TRUE(stream->Apply(batch).ok());

  // The pinned pre-apply epoch is untouched; the new epoch grew.
  EXPECT_EQ(base->num_nodes(0), base_users);
  EXPECT_EQ(base->TotalEdges(), base_edges);
  EXPECT_NE(stream->graph(), base);
  EXPECT_GT(stream->graph()->TotalEdges(), base_edges);
  EXPECT_EQ(stream->epochs_published(), 2);
}

TEST_F(StreamingTest, EmptyAndFullyQuarantinedBatchesKeepEpoch) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db, LenientStream()).value();
  std::shared_ptr<const HeteroGraph> epoch = stream->graph();

  auto empty = stream->Apply(AppendBatch{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().outcome.rows_applied, 0);
  EXPECT_EQ(stream->graph(), epoch);

  AppendBatch junk;
  junk.Add("orders", OrderRow(2, 0, 0, 9.5, 40));  // duplicate PK
  auto quarantined = stream->Apply(junk);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_EQ(quarantined.value().outcome.rows_applied, 0);
  EXPECT_EQ(quarantined.value().outcome.rows_quarantined, 1);
  EXPECT_EQ(stream->graph(), epoch);  // no new epoch published
  EXPECT_EQ(stream->epochs_published(), 1);
}

TEST_F(StreamingTest, BatchSplitInvariance) {
  // The same appends pushed as one batch vs row-at-a-time produce
  // bit-identical graphs: batching is an efficiency choice, not semantics.
  std::vector<RowAppend> rows;
  rows.push_back({"users", UserRow(3, "fr", 28.0)});
  rows.push_back({"products", ProductRow(2, 42.0)});
  rows.push_back({"orders", OrderRow(3, 3, 2, 42.0, 40)});
  rows.push_back({"orders", OrderRow(4, 1, 0, 9.5, 50)});
  rows.push_back({"users", UserRow(4, "de", 61.0)});
  rows.push_back({"orders", OrderRow(5, 4, 2, 42.0, 60)});

  Database db_one = MakeStreamDb();
  auto one = StreamingDbGraph::Create(&db_one).value();
  AppendBatch all;
  all.rows = rows;
  ASSERT_TRUE(one->Apply(all).ok());

  Database db_many = MakeStreamDb();
  auto many = StreamingDbGraph::Create(&db_many).value();
  for (const auto& row : rows) {
    AppendBatch single;
    single.rows = {row};
    ASSERT_TRUE(many->Apply(single).ok());
  }

  ExpectGraphsBitIdentical(*one->graph(), *many->graph(),
                           "one batch vs row-at-a-time");
  // Layouts differ (segment counts), contents do not.
  ExpectCsrInvariants(*one->graph());
  ExpectCsrInvariants(*many->graph());
}

TEST_F(StreamingTest, CompactionPreservesBitEquality) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db, LenientStream(2)).value();

  int64_t compactions = 0;
  for (int64_t i = 0; i < 6; ++i) {
    AppendBatch batch;
    batch.Add("orders",
              OrderRow(3 + i, i % 3, i % 2, 9.5, 40 + 10 * i));
    auto result = stream->Apply(batch);
    ASSERT_TRUE(result.ok());
    compactions += result.value().compacted_edge_types;
    ExpectMatchesRebuild(db, *stream,
                         "after append " + std::to_string(i));
    ExpectCsrInvariants(*stream->graph());
  }
  EXPECT_GT(compactions, 0);

  // After a compaction pass every over-threshold type is single-segment.
  const HeteroGraph& g = *stream->graph();
  for (EdgeTypeId e = 0; e < g.num_edge_types(); ++e) {
    EXPECT_LE(g.num_segments(e), 3) << g.edge_type_name(e);
  }
}

TEST_F(StreamingTest, SamplerOutputMatchesRebuild) {
  Database db = MakeStreamDb();
  // High threshold: keep the incremental graph genuinely multi-segment so
  // the sampler's segment iteration is what's under test.
  StreamingOptions opts_stream;
  opts_stream.compact_threshold = 64;
  auto stream = StreamingDbGraph::Create(&db, opts_stream).value();

  // Grow the graph so multi-segment adjacency is actually exercised.
  for (int64_t i = 0; i < 8; ++i) {
    AppendBatch batch;
    batch.Add("users", UserRow(3 + i, i % 2 ? "be" : "fr", 20.0 + i));
    batch.Add("orders", OrderRow(3 + 2 * i, 3 + i, i % 2, 9.5, 40 + 5 * i));
    batch.Add("orders",
              OrderRow(4 + 2 * i, i % 3, i % 2, 19.0, 42 + 5 * i));
    ASSERT_TRUE(stream->Apply(batch).ok());
  }
  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  ASSERT_GT(stream->graph()->num_segments(0), 1);  // segmented vs
  ASSERT_EQ(rebuilt.graph.num_segments(0), 1);     // single-segment oracle

  const NodeTypeId users = stream->table_type().at("users");
  std::vector<int64_t> seeds;
  for (int64_t u = 0; u < stream->graph()->num_nodes(users); ++u) {
    seeds.push_back(u);
  }
  const Timestamp cutoff = 1000;
  std::vector<Timestamp> cutoffs(seeds.size(), cutoff);

  for (SamplePolicy policy :
       {SamplePolicy::kUniform, SamplePolicy::kMostRecent}) {
    SCOPED_TRACE(policy == SamplePolicy::kUniform ? "uniform"
                                                  : "most-recent");
    SamplerOptions opts;
    opts.fanouts = {3, 2};
    opts.policy = policy;
    NeighborSampler inc(stream->graph().get(), opts);
    NeighborSampler batch(&rebuilt.graph, opts);
    Rng rng_a(7), rng_b(7);
    Subgraph sg_a = inc.Sample(users, seeds, cutoffs, &rng_a);
    Subgraph sg_b = batch.Sample(users, seeds, cutoffs, &rng_b);
    ExpectSubgraphsEqual(sg_a, sg_b);
  }
}

// ------------------------------------------------------------ fault paths

TEST_F(StreamingTest, AppendApplyFaultTriggersRecoveryRebuild) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  FaultInjector::Global().Arm(FaultSite::kAppendApply);

  AppendBatch batch;
  batch.Add("users", UserRow(3, "fr", 28.0));
  batch.Add("orders", OrderRow(3, 3, 0, 9.5, 40));
  auto result = stream->Apply(batch);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().recovered);
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kAppendApply), 1);

  // The database accepted the rows, so recovery must deliver the grown
  // graph — bit-identical to the oracle, just rebuilt instead of folded.
  EXPECT_EQ(result.value().outcome.rows_applied, 2);
  ExpectMatchesRebuild(db, *stream, "recovered epoch");
  ExpectCsrInvariants(*stream->graph());

  // The delta is still usable by the serving layer after recovery.
  EXPECT_EQ(result.value().delta.first_new_node[
                stream->table_type().at("users")],
            3);

  FaultInjector::Global().Reset();
  AppendBatch more;
  more.Add("orders", OrderRow(4, 0, 0, 9.5, 50));
  auto next = stream->Apply(more);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().recovered);
  ExpectMatchesRebuild(db, *stream, "epoch after recovery");
}

TEST_F(StreamingTest, CompactFaultDefersCompactionHarmlessly) {
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db, LenientStream(1)).value();
  FaultInjector::Global().Arm(FaultSite::kCompact, /*skip=*/0,
                              /*times=*/-1);

  for (int64_t i = 0; i < 4; ++i) {
    AppendBatch batch;
    batch.Add("orders", OrderRow(3 + i, i % 3, i % 2, 9.5, 40 + 10 * i));
    auto result = stream->Apply(batch);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().compacted_edge_types, 0);
    EXPECT_FALSE(result.value().recovered);  // compaction is non-fatal
    ExpectMatchesRebuild(db, *stream,
                         "deferred compaction " + std::to_string(i));
  }
  EXPECT_GT(FaultInjector::Global().fired(FaultSite::kCompact), 0);
  EXPECT_GT(stream->graph()->num_segments(0), 1);

  // Once the fault clears, the next apply catches up on compaction and
  // equality still holds.
  FaultInjector::Global().Reset();
  AppendBatch batch;
  batch.Add("orders", OrderRow(7, 0, 0, 9.5, 90));
  auto result = stream->Apply(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().compacted_edge_types, 0);
  ExpectMatchesRebuild(db, *stream, "post-fault compaction");
  ExpectCsrInvariants(*stream->graph());
}

// -------------------------------------------------------- schedule fuzzer

/// Random schedule state: live PKs per table plus a monotone order clock.
struct FuzzState {
  int64_t next_user = 3;
  int64_t next_product = 2;
  int64_t next_order = 3;
  Timestamp clock = 30;
  std::vector<int64_t> users{0, 1, 2};
  std::vector<int64_t> products{0, 1};
};

/// One random row; ~12% of draws are deliberately invalid (dangling FK,
/// duplicate PK, arity error, null PK) to exercise quarantine alongside
/// growth. Returns whether the row should be accepted.
bool RandomRow(Rng* rng, FuzzState* st, AppendBatch* batch,
               std::vector<int64_t>* batch_users) {
  const double roll = rng->Uniform();
  if (roll < 0.03) {  // dangling order FK
    batch->Add("orders", OrderRow(st->next_order++, 100000, 0, 1.0,
                                  st->clock += rng->UniformInt(0, 3)));
    return false;
  }
  if (roll < 0.06) {  // duplicate user PK
    batch->Add("users", UserRow(st->users[rng->UniformInt(
                                    0, static_cast<int64_t>(
                                           st->users.size()) - 1)],
                                "dup", 1.0));
    return false;
  }
  if (roll < 0.09) {  // arity error
    batch->Add("orders", {Value(st->next_order++), Value(int64_t{0})});
    return false;
  }
  if (roll < 0.12) {  // null PK
    batch->Add("users", {Value::Null(), Value("null"), Value(1.0)});
    return false;
  }
  if (roll < 0.32) {  // new user, sometimes an out-of-vocab country
    const char* countries[] = {"be", "nl", "fr", "zz", "xx"};
    const int64_t id = st->next_user++;
    batch->Add("users",
               UserRow(id, countries[rng->UniformInt(0, 4)],
                       20.0 + static_cast<double>(rng->UniformInt(0, 50))));
    batch_users->push_back(id);
    return true;
  }
  if (roll < 0.44) {  // new product
    const int64_t id = st->next_product++;
    batch->Add("products",
               ProductRow(id, 5.0 + static_cast<double>(
                                        rng->UniformInt(0, 100))));
    st->products.push_back(id);
    return true;
  }
  // New order; may reference a user introduced earlier in this batch.
  int64_t user;
  if (!batch_users->empty() && rng->Bernoulli(0.3)) {
    user = (*batch_users)[rng->UniformInt(
        0, static_cast<int64_t>(batch_users->size()) - 1)];
  } else {
    user = st->users[rng->UniformInt(
        0, static_cast<int64_t>(st->users.size()) - 1)];
  }
  const int64_t product = st->products[rng->UniformInt(
      0, static_cast<int64_t>(st->products.size()) - 1)];
  batch->Add("orders",
             OrderRow(st->next_order++, user, product,
                      static_cast<double>(rng->UniformInt(1, 100)),
                      st->clock += rng->UniformInt(0, 3)));
  return true;
}

TEST_F(StreamingTest, FuzzedSchedulesMatchRebuildBitForBit) {
  // ~1k random operations per seed across random batch sizes, with a
  // compaction-prone threshold, verifying the differential gate and the
  // CSR invariants at every checkpoint and sampler equality at the end.
  for (uint64_t seed : {11u, 22u, 33u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    Database db = MakeStreamDb();
    auto stream = StreamingDbGraph::Create(&db, LenientStream(3)).value();
    FuzzState st;

    int64_t ops = 0, applied = 0, quarantined = 0;
    for (int64_t step = 0; step < 120; ++step) {
      AppendBatch batch;
      std::vector<int64_t> batch_users;
      const int64_t batch_size = rng.UniformInt(1, 8);
      for (int64_t i = 0; i < batch_size; ++i) {
        RandomRow(&rng, &st, &batch, &batch_users);
        ++ops;
      }
      auto result = stream->Apply(batch);
      ASSERT_TRUE(result.ok()) << result.status().message();
      applied += result.value().outcome.rows_applied;
      quarantined += result.value().outcome.rows_quarantined;
      // Users accepted this batch become referenceable next batch.
      for (int64_t u : batch_users) st.users.push_back(u);

      if (step % 20 == 19) {
        ExpectCsrInvariants(*stream->graph());
        ExpectMatchesRebuild(db, *stream,
                             "step " + std::to_string(step));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    ASSERT_GE(ops, 500);
    EXPECT_GT(applied, 0);
    EXPECT_GT(quarantined, 0);  // invalid draws actually occurred
    ExpectCsrInvariants(*stream->graph());
    ExpectMatchesRebuild(db, *stream, "final");

    // Sampler differential at the fuzzed endpoint.
    auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
    const NodeTypeId users = stream->table_type().at("users");
    std::vector<int64_t> seeds_v;
    for (int64_t u = 0; u < stream->graph()->num_nodes(users); u += 3) {
      seeds_v.push_back(u);
    }
    std::vector<Timestamp> cutoffs(seeds_v.size(), st.clock + 1);
    SamplerOptions opts;
    opts.fanouts = {4, 3};
    opts.policy = SamplePolicy::kMostRecent;
    NeighborSampler inc(stream->graph().get(), opts);
    NeighborSampler batch_s(&rebuilt.graph, opts);
    Rng ra(99), rb(99);
    ExpectSubgraphsEqual(inc.Sample(users, seeds_v, cutoffs, &ra),
                         batch_s.Sample(users, seeds_v, cutoffs, &rb));
  }
}

TEST_F(StreamingTest, FuzzWithChaosFaultsStillMatchesRebuild) {
  // Seeded probabilistic faults at both streaming sites while the fuzzer
  // runs: every recovery must land on the same bit-identical state.
  Rng rng(77);
  Database db = MakeStreamDb();
  auto stream = StreamingDbGraph::Create(&db, LenientStream(3)).value();
  FaultInjector::Global().ArmProbability(FaultSite::kAppendApply, 0.15, 5);
  FaultInjector::Global().ArmProbability(FaultSite::kCompact, 0.3, 6);

  FuzzState st;
  int64_t recoveries = 0;
  for (int64_t step = 0; step < 60; ++step) {
    AppendBatch batch;
    std::vector<int64_t> batch_users;
    const int64_t batch_size = rng.UniformInt(1, 6);
    for (int64_t i = 0; i < batch_size; ++i) {
      RandomRow(&rng, &st, &batch, &batch_users);
    }
    auto result = stream->Apply(batch);
    ASSERT_TRUE(result.ok()) << result.status().message();
    recoveries += result.value().recovered ? 1 : 0;
    for (int64_t u : batch_users) st.users.push_back(u);

    if (step % 15 == 14) {
      ExpectMatchesRebuild(db, *stream, "chaos step " + std::to_string(step));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(recoveries, 0);
  EXPECT_GT(FaultInjector::Global().fired(FaultSite::kAppendApply), 0);
  FaultInjector::Global().Reset();
  ExpectMatchesRebuild(db, *stream, "chaos final");
  ExpectCsrInvariants(*stream->graph());
}

}  // namespace
}  // namespace relgraph

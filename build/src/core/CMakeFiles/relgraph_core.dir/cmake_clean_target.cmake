file(REMOVE_RECURSE
  "librelgraph_core.a"
)

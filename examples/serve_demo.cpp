// Online serving demo: compile a predictive query for serving, load a
// trained checkpoint into the InferenceEngine, and answer scoring requests
// with subgraph/embedding caching.
//
// 1. train the churn query and checkpoint the weights (as an offline job
//    would);
// 2. CompileForServing the SAME query -> ServePlan (no training);
// 3. build an InferenceEngine from the plan, load the checkpoint, warm the
//    caches for the hottest users;
// 4. serve scoring requests and print cache/latency statistics;
// 5. advance to a fresh graph snapshot and keep serving.
//
// Run: ./build/examples/serve_demo [output_dir]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/timer.h"
#include "datagen/ecommerce.h"
#include "pq/engine.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "serve/inference_engine.h"
#include "train/trainer.h"

using namespace relgraph;

namespace {

// The serving WITH options must match the checkpoint's training options —
// the plan carries them to the engine so the architectures line up.
constexpr const char* kQuery =
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "USING GNN WITH hidden=32, layers=2, fanout=8, policy=recent, seed=3";

void PrintStats(const InferenceEngine& engine) {
  const ServeStats s = engine.stats();
  std::printf(
      "  stats: %lld requests / %lld entities | subgraph cache %lld hit "
      "%lld miss | embedding cache %lld hit %lld miss | snapshot v%lld\n",
      static_cast<long long>(s.requests),
      static_cast<long long>(s.entities_scored),
      static_cast<long long>(s.subgraph_hits),
      static_cast<long long>(s.subgraph_misses),
      static_cast<long long>(s.embedding_hits),
      static_cast<long long>(s.embedding_misses),
      static_cast<long long>(s.snapshot_version));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string ckpt_path = dir + "/relgraph_serve_demo.ckpt";

  // ---- offline: train the query and checkpoint the weights --------------
  ECommerceConfig cfg;
  cfg.num_users = 300;
  cfg.num_products = 60;
  cfg.num_categories = 6;
  cfg.horizon_days = 150;
  Database db = MakeECommerceDb(cfg);

  PredictiveQueryEngine pq(&db);
  auto plan = pq.CompileForServing(kQuery);
  if (!plan.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled for serving: entity table '%s', now cutoff %lld\n",
              plan.value().entity_table.c_str(),
              static_cast<long long>(plan.value().now_cutoff));

  {
    auto rq = AnalyzeQuery(ParseQuery(kQuery).value(), db).value();
    auto cutoffs = MakeCutoffs(rq, db).value();
    auto table = BuildTrainingTable(rq, db, cutoffs).value();
    auto split = MakeSplit(rq, table, cutoffs).value();
    TrainerConfig tc;
    tc.epochs = 4;
    tc.seed = plan.value().seed;
    GnnNodePredictor trainer(plan.value().graph, plan.value().entity_type,
                             plan.value().kind, plan.value().num_classes,
                             plan.value().gnn, plan.value().sampler, tc);
    if (!trainer.Fit(table, split).ok()) return 1;
    if (!trainer.SaveWeights(ckpt_path).ok()) return 1;
    std::printf("trained (val %.4f) -> %s\n", trainer.best_val_metric(),
                ckpt_path.c_str());
  }

  // ---- online: engine from the plan + checkpoint ------------------------
  ServeOptions serve;
  serve.micro_batch_size = 16;
  InferenceEngine engine(plan.value(), serve);
  if (Status st = engine.LoadCheckpoint(ckpt_path); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Warm the caches for the "hottest" users before traffic arrives.
  std::vector<int64_t> hottest;
  for (int64_t u = 0; u < 32; ++u) hottest.push_back(u);
  if (!engine.WarmUp(hottest).ok()) return 1;
  std::printf("warmed %zu hottest users\n", hottest.size());
  PrintStats(engine);

  // Serve a Zipfian request stream (hot users dominate, like production).
  Rng traffic(42);
  Timer timer;
  for (int r = 0; r < 50; ++r) {
    std::vector<int64_t> req;
    for (int i = 0; i < 8; ++i) {
      req.push_back(traffic.PowerLawIndex(static_cast<int>(cfg.num_users),
                                          1.1));
    }
    auto scores = engine.Score(req);
    if (!scores.ok()) {
      std::fprintf(stderr, "score failed: %s\n",
                   scores.status().ToString().c_str());
      return 1;
    }
    if (r == 0) {
      std::printf("first request:");
      for (size_t i = 0; i < req.size(); ++i) {
        std::printf(" u%lld=%.3f", static_cast<long long>(req[i]),
                    scores.value()[i]);
      }
      std::printf("\n");
    }
  }
  std::printf("served 50 requests in %.1f ms\n", timer.Millis());
  PrintStats(engine);

  // ---- a new day of data arrives: advance the snapshot ------------------
  // (Here the "fresh" snapshot is an independent rebuild of the same
  // database; production would rebuild from the updated DB.)
  auto fresh = BuildDbGraph(db).value();
  if (Status st = engine.AdvanceSnapshot(&fresh.graph,
                                         db.TimeRange().second + 1);
      !st.ok()) {
    std::fprintf(stderr, "advance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("advanced snapshot; caches invalidated, serving continues\n");
  auto after = engine.Score(hottest);
  if (!after.ok()) return 1;
  std::printf("re-scored %zu warmed users on the new snapshot\n",
              after.value().size());
  PrintStats(engine);
  return 0;
}

// Table 2 — Entity-level regression across the three domains.
//
// Paper claim reproduced: the same ordering as classification holds for
// regression targets — the declarative GNN matches or beats the
// feature-engineered GBDT, both far below the single-table baselines
// (lower MAE is better).
//
// Tasks:
//   spend-56d    e-commerce: per-user order spend over the next 8 weeks
//   visits-60d   clinical: per-patient visit count over the next 60 days
//   posts-14d    social: posts written by a user over the next 2 weeks

#include "bench_util.h"

using namespace relgraph;
using namespace relgraph::bench;

int main() {
  struct Task {
    const char* name;
    Database db;
    std::string query;
  };
  std::vector<Task> tasks;
  tasks.push_back({"spend-56d", StandardECommerce(),
                   "PREDICT SUM(orders.total) OVER NEXT 56 DAYS FOR EACH "
                   "users EVERY 28 DAYS "});
  tasks.push_back({"visits-60d", StandardClinical(),
                   "PREDICT COUNT(visits) OVER NEXT 60 DAYS FOR EACH "
                   "patients EVERY 30 DAYS "});
  tasks.push_back({"posts-14d", StandardSocial(),
                   "PREDICT COUNT(posts) OVER NEXT 14 DAYS FOR EACH "
                   "users "});

  const std::vector<std::pair<std::string, std::string>> models = {
      {"constant (mean)", "USING CONSTANT"},
      {"linear (entity cols)", "USING LINEAR"},
      {"mlp (entity cols)", "USING MLP"},
      {"gbdt (eng. features)", "USING GBDT"},
      {"gnn (declarative)",
       "USING GNN WITH layers=2, hidden=48, epochs=14, lr=0.01, "
       "patience=5, fanout=8, policy=recent, conv=gat, norm=true"},
  };

  std::vector<std::string> cols;
  for (const auto& t : tasks) cols.push_back(t.name);
  PrintHeader("Table 2: entity regression (test MAE, lower is better)",
              cols);

  std::vector<std::unique_ptr<PredictiveQueryEngine>> engines;
  for (auto& t : tasks) {
    engines.push_back(std::make_unique<PredictiveQueryEngine>(&t.db));
  }
  for (const auto& [label, suffix] : models) {
    std::vector<double> row;
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      QueryResult r;
      row.push_back(Run(engines[ti].get(), tasks[ti].query + suffix, &r)
                        ? r.test_metric
                        : -1.0);
    }
    PrintRow(label, row);
  }
  std::printf("\nexpected shape: constant worst, gbdt and gnn lowest; the "
              "query text is identical per column, only USING changes.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/relgraph_gnn.dir/heads.cc.o"
  "CMakeFiles/relgraph_gnn.dir/heads.cc.o.d"
  "CMakeFiles/relgraph_gnn.dir/hetero_sage.cc.o"
  "CMakeFiles/relgraph_gnn.dir/hetero_sage.cc.o.d"
  "librelgraph_gnn.a"
  "librelgraph_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relgraph_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef RELGRAPH_CORE_BUFFER_POOL_H_
#define RELGRAPH_CORE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace relgraph {

/// Recycling pool for `std::vector<float>` backing buffers.
///
/// Every `Tensor` acquires its storage here and returns it on destruction,
/// so a steady-state training batch or warm serving request performs zero
/// tensor heap allocations: the buffers of the previous batch's autograd
/// tape are recycled into the next one. Buffers are binned by
/// power-of-two capacity — `Acquire(n)` returns a vector whose capacity is
/// at least `n` (so per-batch shape jitter within a bin still hits), with
/// unspecified size and contents; callers `assign` into it.
///
/// Determinism: the pool only changes *where* a buffer's bytes live, never
/// what is written into them — every acquired buffer is fully overwritten
/// by its tensor's constructor — so results are bit-identical with the
/// pool on, off (`RELGRAPH_ARENA=0`), warm, or cold.
///
/// Thread safety: all operations take one internal mutex; acquisition
/// happens per tensor (not per element), so contention is negligible next
/// to the kernels that run on the buffers.
///
/// Under AddressSanitizer the pool poisons buffers while they sit idle and
/// unpoisons them on acquisition, so a use-after-release (the classic bug
/// class recycling arenas hide) still faults instead of silently reading a
/// recycled batch.
class FloatBufferPool {
 public:
  /// Allocation observability for benchmarks and the zero-alloc tests.
  /// All counters are process-lifetime monotonic; diff them around a
  /// region to measure it.
  struct Stats {
    int64_t heap_allocs = 0;  ///< Acquire calls that hit the heap.
    int64_t pool_hits = 0;    ///< Acquire calls served from the pool.
    int64_t released = 0;     ///< buffers returned and kept for reuse
    int64_t dropped = 0;      ///< buffers freed (bin full or pool disabled)
    int64_t pooled_bytes = 0; ///< bytes of idle buffers currently pooled
  };

  /// The shared process-wide pool (never destroyed, so tensors with static
  /// storage duration can release safely at exit).
  static FloatBufferPool& Global();

  /// A vector with capacity >= n; size and contents are unspecified (the
  /// caller must assign/overwrite). n == 0 returns an empty vector without
  /// touching the pool.
  std::vector<float> Acquire(size_t n);

  /// Returns a buffer for reuse. Safe for any vector, including
  /// externally-allocated ones moved into tensors.
  void Release(std::vector<float>&& buf);

  Stats stats() const;

  /// True unless RELGRAPH_ARENA=0 disabled recycling at process start
  /// (allocation counting stays active either way).
  bool enabled() const { return enabled_; }

  /// Frees every pooled buffer (tests and memory-pressure hooks).
  void Clear();

 private:
  FloatBufferPool();

  // Buffers a bin may retain before Release starts freeing instead of
  // pooling: each bin holds up to ~kBinBudgetBytes of idle memory,
  // clamped to [kMinPerBin, kMaxPerBin] buffers. Byte-based so the
  // sub-KB classes — a training tape floats hundreds of small weight /
  // gradient / optimizer-slot buffers at once — are retained in bulk,
  // while a few huge buffers already pin plenty of memory.
  static size_t BinCap(int bin);
  static constexpr size_t kBinBudgetBytes = size_t{8} << 20;
  static constexpr size_t kMinPerBin = 8;
  static constexpr size_t kMaxPerBin = 4096;
  static constexpr int kNumBins = 48;

  bool enabled_;
  mutable std::mutex mu_;
  std::vector<std::vector<float>> bins_[kNumBins];
  std::atomic<int64_t> heap_allocs_{0};
  std::atomic<int64_t> pool_hits_{0};
  std::atomic<int64_t> released_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> pooled_bytes_{0};
};

/// The low-precision storage dtypes the memory accountant distinguishes.
/// fp32 tensor storage is already covered by FloatBufferPool stats; these
/// counters track the payload bytes of quantized/bf16 representations
/// (node-feature matrices, packed int8 weights, encoded embedding-cache
/// entries) so footprint wins are observable, not asserted.
enum class QuantDtype : int { kInt8 = 0, kBf16 = 1 };

/// Process-wide per-dtype bytes-resident registry. Quantized containers
/// register their payload size on construction and deregister on
/// destruction via ScopedQuantBytes; `resident()` is therefore the exact
/// number of live low-precision payload bytes at any instant. All
/// counters are relaxed atomics — cheap enough to leave always-on.
class QuantBytesRegistry {
 public:
  static QuantBytesRegistry& Global();

  void Add(QuantDtype d, int64_t bytes) {
    resident_[static_cast<int>(d)].fetch_add(bytes,
                                             std::memory_order_relaxed);
  }
  void Sub(QuantDtype d, int64_t bytes) {
    resident_[static_cast<int>(d)].fetch_sub(bytes,
                                             std::memory_order_relaxed);
  }

  /// Live payload bytes of the given dtype.
  int64_t resident(QuantDtype d) const {
    return resident_[static_cast<int>(d)].load(std::memory_order_relaxed);
  }

  /// Live payload bytes across all low-precision dtypes.
  int64_t total_resident() const {
    int64_t total = 0;
    for (const auto& c : resident_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  QuantBytesRegistry() = default;
  std::atomic<int64_t> resident_[2]{};
};

/// RAII byte registration: holds `bytes` against one dtype's resident
/// counter for its lifetime. Movable (transfer of ownership), not
/// copyable; `Reset` re-registers after a payload is (re)built.
class ScopedQuantBytes {
 public:
  ScopedQuantBytes() = default;
  ScopedQuantBytes(QuantDtype d, int64_t bytes) : dtype_(d), bytes_(bytes) {
    if (bytes_ > 0) QuantBytesRegistry::Global().Add(dtype_, bytes_);
  }
  ~ScopedQuantBytes() { Release(); }
  ScopedQuantBytes(ScopedQuantBytes&& o) noexcept
      : dtype_(o.dtype_), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  ScopedQuantBytes& operator=(ScopedQuantBytes&& o) noexcept {
    if (this != &o) {
      Release();
      dtype_ = o.dtype_;
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }
  ScopedQuantBytes(const ScopedQuantBytes&) = delete;
  ScopedQuantBytes& operator=(const ScopedQuantBytes&) = delete;

  void Reset(QuantDtype d, int64_t bytes) {
    Release();
    dtype_ = d;
    bytes_ = bytes;
    if (bytes_ > 0) QuantBytesRegistry::Global().Add(dtype_, bytes_);
  }

  int64_t bytes() const { return bytes_; }

 private:
  void Release() {
    if (bytes_ > 0) QuantBytesRegistry::Global().Sub(dtype_, bytes_);
    bytes_ = 0;
  }
  QuantDtype dtype_ = QuantDtype::kInt8;
  int64_t bytes_ = 0;
};

}  // namespace relgraph

#endif  // RELGRAPH_CORE_BUFFER_POOL_H_

#include "graph/hetero_graph.h"

#include "core/logging.h"
#include "core/string_util.h"

namespace relgraph {

Result<NodeTypeId> HeteroGraph::AddNodeType(const std::string& name,
                                            int64_t num_nodes) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("negative node count for type " + name);
  }
  if (node_index_.count(name)) {
    return Status::AlreadyExists("node type '" + name + "' already exists");
  }
  NodeTypeId id = static_cast<NodeTypeId>(node_names_.size());
  node_index_[name] = id;
  node_names_.push_back(name);
  num_nodes_.push_back(num_nodes);
  features_.emplace_back();
  node_times_.emplace_back();
  return id;
}

Status HeteroGraph::SetNodeFeatures(NodeTypeId type, Tensor features) {
  if (type < 0 || type >= num_node_types()) {
    return Status::OutOfRange("bad node type id");
  }
  if (features.rows() != num_nodes_[type]) {
    return Status::InvalidArgument(StrFormat(
        "feature rows %lld != node count %lld for type '%s'",
        static_cast<long long>(features.rows()),
        static_cast<long long>(num_nodes_[type]),
        node_names_[type].c_str()));
  }
  features_[type] = std::move(features);
  return Status::OK();
}

Status HeteroGraph::SetNodeTimes(NodeTypeId type,
                                 std::vector<Timestamp> times) {
  if (type < 0 || type >= num_node_types()) {
    return Status::OutOfRange("bad node type id");
  }
  if (static_cast<int64_t>(times.size()) != num_nodes_[type]) {
    return Status::InvalidArgument("times size != node count for type '" +
                                   node_names_[type] + "'");
  }
  node_times_[type] = std::move(times);
  return Status::OK();
}

Result<EdgeTypeId> HeteroGraph::AddEdgeType(
    const std::string& name, NodeTypeId src_type, NodeTypeId dst_type,
    const std::vector<int64_t>& src, const std::vector<int64_t>& dst,
    const std::vector<Timestamp>& times) {
  if (src_type < 0 || src_type >= num_node_types() || dst_type < 0 ||
      dst_type >= num_node_types()) {
    return Status::OutOfRange("bad endpoint node type for edge type " + name);
  }
  if (edge_index_.count(name)) {
    return Status::AlreadyExists("edge type '" + name + "' already exists");
  }
  if (src.size() != dst.size() || src.size() != times.size()) {
    return Status::InvalidArgument(
        "src/dst/times arrays must be the same length");
  }
  const int64_t n_src = num_nodes_[src_type];
  const int64_t n_dst = num_nodes_[dst_type];
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] < 0 || src[i] >= n_src) {
      return Status::OutOfRange(StrFormat(
          "edge %zu: src %lld out of range [0,%lld)", i,
          static_cast<long long>(src[i]), static_cast<long long>(n_src)));
    }
    if (dst[i] < 0 || dst[i] >= n_dst) {
      return Status::OutOfRange(StrFormat(
          "edge %zu: dst %lld out of range [0,%lld)", i,
          static_cast<long long>(dst[i]), static_cast<long long>(n_dst)));
    }
  }
  Csr csr;
  csr.offsets.assign(static_cast<size_t>(n_src) + 1, 0);
  for (int64_t s : src) ++csr.offsets[static_cast<size_t>(s) + 1];
  for (size_t i = 1; i < csr.offsets.size(); ++i) {
    csr.offsets[i] += csr.offsets[i - 1];
  }
  csr.neighbors.resize(src.size());
  csr.times.resize(src.size());
  std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (size_t i = 0; i < src.size(); ++i) {
    int64_t& pos = cursor[static_cast<size_t>(src[i])];
    csr.neighbors[static_cast<size_t>(pos)] = dst[i];
    csr.times[static_cast<size_t>(pos)] = times[i];
    ++pos;
  }
  EdgeTypeId id = static_cast<EdgeTypeId>(edge_names_.size());
  edge_index_[name] = id;
  edge_names_.push_back(name);
  edge_src_.push_back(src_type);
  edge_dst_.push_back(dst_type);
  csr_.push_back(std::move(csr));
  return id;
}

Result<NodeTypeId> HeteroGraph::FindNodeType(const std::string& name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end()) {
    return Status::NotFound("no node type '" + name + "'");
  }
  return it->second;
}

Result<EdgeTypeId> HeteroGraph::FindEdgeType(const std::string& name) const {
  auto it = edge_index_.find(name);
  if (it == edge_index_.end()) {
    return Status::NotFound("no edge type '" + name + "'");
  }
  return it->second;
}

int64_t HeteroGraph::TotalNodes() const {
  int64_t total = 0;
  for (int64_t n : num_nodes_) total += n;
  return total;
}

int64_t HeteroGraph::TotalEdges() const {
  int64_t total = 0;
  for (const auto& csr : csr_) {
    total += static_cast<int64_t>(csr.neighbors.size());
  }
  return total;
}

Timestamp HeteroGraph::node_time(NodeTypeId t, int64_t node) const {
  const auto& times = node_times_[t];
  if (times.empty()) return kNoTimestamp;
  return times[static_cast<size_t>(node)];
}

void HeteroGraph::Neighbors(EdgeTypeId e, int64_t node,
                            const int64_t** dst_out,
                            const Timestamp** time_out,
                            int64_t* count_out) const {
  const Csr& csr = csr_[e];
  const int64_t begin = csr.offsets[static_cast<size_t>(node)];
  const int64_t end = csr.offsets[static_cast<size_t>(node) + 1];
  *dst_out = csr.neighbors.data() + begin;
  *time_out = csr.times.data() + begin;
  *count_out = end - begin;
}

int64_t HeteroGraph::Degree(EdgeTypeId e, int64_t node) const {
  const Csr& csr = csr_[e];
  return csr.offsets[static_cast<size_t>(node) + 1] -
         csr.offsets[static_cast<size_t>(node)];
}

std::string HeteroGraph::Describe() const {
  std::string out;
  for (int32_t t = 0; t < num_node_types(); ++t) {
    out += StrFormat("node type %-12s  %7lld nodes, %lld features\n",
                     node_names_[t].c_str(),
                     static_cast<long long>(num_nodes_[t]),
                     static_cast<long long>(feature_dim(t)));
  }
  for (int32_t e = 0; e < num_edge_types(); ++e) {
    out += StrFormat("edge type %-22s  %s -> %s, %lld edges\n",
                     edge_names_[e].c_str(),
                     node_names_[edge_src_[e]].c_str(),
                     node_names_[edge_dst_[e]].c_str(),
                     static_cast<long long>(num_edges(e)));
  }
  return out;
}

}  // namespace relgraph

#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/logging.h"
#include "tensor/simd_kernels.h"

namespace relgraph {

Tensor& Var::grad() {
  if (!grad_init_) {
    grad_ = Tensor::Zeros(value_.rows(), value_.cols());
    grad_init_ = true;
  }
  return grad_;
}

void Var::ZeroGrad() {
  if (grad_init_) grad_.Fill(0.0f);
}

namespace ag {

namespace {

/// Creates a result node whose parents/backward are wired only when at
/// least one parent participates in gradient computation.
VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Var*)> backward) {
  bool needs = false;
  for (const auto& p : parents) needs = needs || p->requires_grad();
  auto out = std::make_shared<Var>(std::move(value), needs);
  if (needs) {
    // The closure captures the raw result pointer: the closure is owned by
    // the result node, so the pointer cannot dangle while it is callable.
    Var* raw = out.get();
    out->SetEdge(std::move(parents),
                 [raw, backward = std::move(backward)]() { backward(raw); });
  }
  return out;
}

}  // namespace

VarPtr Constant(Tensor value) {
  return std::make_shared<Var>(std::move(value), false);
}

VarPtr Param(Tensor value) {
  return std::make_shared<Var>(std::move(value), true);
}

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  Tensor out = relgraph::MatMul(a->value(), b->value());
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(MatMulBT(g, b->value()));
    if (b->requires_grad()) b->grad().Add(MatMulAT(a->value(), g));
  });
}

VarPtr MatMulPacked(const VarPtr& a,
                    std::shared_ptr<const PackedMatrix> packed,
                    const VarPtr& w) {
  RELGRAPH_CHECK(packed != nullptr);
  RELGRAPH_CHECK(packed->rows == w->rows() && packed->cols == w->cols())
      << "packed panels are for a " << packed->rows << "x" << packed->cols
      << " matrix, not " << w->rows() << "x" << w->cols();
  Tensor out = relgraph::MatMulPacked(a->value(), *packed);
  // Backward reads the unpacked weight; the panels are a forward-only
  // artifact (the node keeps them alive via the closure for nothing more
  // than symmetry — gradients never touch them).
  return MakeNode(std::move(out), {a, w}, [a, w](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(MatMulBT(g, w->value()));
    if (w->requires_grad()) w->grad().Add(MatMulAT(a->value(), g));
  });
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  Tensor out = relgraph::Add(a->value(), b->value());
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(g);
    if (b->requires_grad()) b->grad().Add(g);
  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  Tensor out = relgraph::Sub(a->value(), b->value());
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(g);
    if (b->requires_grad()) {
      kern::AxpyInto(b->grad().data(), g.data(), -1.0f, g.numel());
    }
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  Tensor out = relgraph::Mul(a->value(), b->value());
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(relgraph::Mul(g, b->value()));
    if (b->requires_grad()) b->grad().Add(relgraph::Mul(g, a->value()));
  });
}

VarPtr AddBias(const VarPtr& a, const VarPtr& bias) {
  Tensor out = AddRowBroadcast(a->value(), bias->value());
  return MakeNode(std::move(out), {a, bias}, [a, bias](Var* node) {
    const Tensor& g = node->grad();
    if (a->requires_grad()) a->grad().Add(g);
    if (bias->requires_grad()) bias->grad().Add(SumRows(g));
  });
}

VarPtr Scale(const VarPtr& a, float s) {
  Tensor out = a->value();
  out.Scale(s);
  return MakeNode(std::move(out), {a}, [a, s](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    kern::AxpyInto(a->grad().data(), g.data(), s, g.numel());
  });
}

VarPtr Exp(const VarPtr& a) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.data()[i] = std::exp(out.data()[i]);
  }
  return MakeNode(std::move(out), {a}, [a](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    const Tensor& y = node->value();
    Tensor& ag = a->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      ag.data()[i] += g.data()[i] * y.data()[i];
    }
  });
}

VarPtr Div(const VarPtr& a, const VarPtr& b) {
  RELGRAPH_CHECK(a->value().SameShape(b->value()));
  Tensor out(a->rows(), a->cols());
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.data()[i] = a->value().data()[i] / b->value().data()[i];
  }
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      const float bv = b->value().data()[i];
      if (a->requires_grad()) a->grad().data()[i] += g.data()[i] / bv;
      if (b->requires_grad()) {
        b->grad().data()[i] -=
            g.data()[i] * a->value().data()[i] / (bv * bv);
      }
    }
  });
}

VarPtr MulColBroadcast(const VarPtr& a, const VarPtr& w) {
  RELGRAPH_CHECK(w->cols() == 1 && w->rows() == a->rows());
  Tensor out(a->rows(), a->cols());
  for (int64_t r = 0; r < a->rows(); ++r) {
    const float wv = w->value().at(r, 0);
    for (int64_t c = 0; c < a->cols(); ++c) {
      out.at(r, c) = a->value().at(r, c) * wv;
    }
  }
  return MakeNode(std::move(out), {a, w}, [a, w](Var* node) {
    const Tensor& g = node->grad();
    for (int64_t r = 0; r < g.rows(); ++r) {
      const float wv = w->value().at(r, 0);
      double acc = 0.0;
      for (int64_t c = 0; c < g.cols(); ++c) {
        if (a->requires_grad()) a->grad().at(r, c) += g.at(r, c) * wv;
        acc += static_cast<double>(g.at(r, c)) * a->value().at(r, c);
      }
      if (w->requires_grad()) {
        w->grad().at(r, 0) += static_cast<float>(acc);
      }
    }
  });
}

VarPtr SegmentSoftmax(const VarPtr& scores,
                      std::vector<int64_t> segment_ids,
                      int64_t num_segments) {
  RELGRAPH_CHECK(scores->cols() == 1);
  RELGRAPH_CHECK(static_cast<int64_t>(segment_ids.size()) == scores->rows());
  const int64_t n = scores->rows();
  std::vector<double> seg_max(static_cast<size_t>(num_segments), -1e30);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    RELGRAPH_CHECK(s >= 0 && s < num_segments);
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)],
                 static_cast<double>(scores->value().at(i, 0)));
  }
  std::vector<double> seg_sum(static_cast<size_t>(num_segments), 0.0);
  Tensor out(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    const double e = std::exp(scores->value().at(i, 0) -
                              seg_max[static_cast<size_t>(s)]);
    out.at(i, 0) = static_cast<float>(e);
    seg_sum[static_cast<size_t>(s)] += e;
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = segment_ids[static_cast<size_t>(i)];
    out.at(i, 0) = static_cast<float>(out.at(i, 0) /
                                      seg_sum[static_cast<size_t>(s)]);
  }
  auto ids = std::make_shared<std::vector<int64_t>>(std::move(segment_ids));
  return MakeNode(std::move(out), {scores}, [scores, ids,
                                             num_segments](Var* node) {
    if (!scores->requires_grad()) return;
    const Tensor& g = node->grad();
    const Tensor& w = node->value();
    // d s_i = w_i * (g_i - sum_j in segment w_j g_j).
    std::vector<double> seg_dot(static_cast<size_t>(num_segments), 0.0);
    for (size_t i = 0; i < ids->size(); ++i) {
      seg_dot[static_cast<size_t>((*ids)[i])] +=
          static_cast<double>(w.at(static_cast<int64_t>(i), 0)) *
          g.at(static_cast<int64_t>(i), 0);
    }
    for (size_t i = 0; i < ids->size(); ++i) {
      const int64_t r = static_cast<int64_t>(i);
      scores->grad().at(r, 0) += static_cast<float>(
          w.at(r, 0) * (g.at(r, 0) -
                        seg_dot[static_cast<size_t>((*ids)[i])]));
    }
  });
}

VarPtr Relu(const VarPtr& a) {
  Tensor out(a->rows(), a->cols());
  kern::ReluOut(out.data(), a->value().data(), out.numel());
  return MakeNode(std::move(out), {a}, [a](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    kern::ReluGradAccum(a->grad().data(), g.data(), a->value().data(),
                        g.numel());
  });
}

VarPtr LeakyRelu(const VarPtr& a, float slope) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    float v = out.data()[i];
    out.data()[i] = v > 0.0f ? v : slope * v;
  }
  return MakeNode(std::move(out), {a}, [a, slope](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& ag = a->grad();
    const Tensor& x = a->value();
    for (int64_t i = 0; i < g.numel(); ++i) {
      ag.data()[i] += g.data()[i] * (x.data()[i] > 0.0f ? 1.0f : slope);
    }
  });
}

VarPtr Tanh(const VarPtr& a) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  return MakeNode(std::move(out), {a}, [a](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    const Tensor& y = node->value();
    Tensor& ag = a->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      ag.data()[i] += g.data()[i] * (1.0f - y.data()[i] * y.data()[i]);
    }
  });
}

VarPtr Sigmoid(const VarPtr& a) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  return MakeNode(std::move(out), {a}, [a](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    const Tensor& y = node->value();
    Tensor& ag = a->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      ag.data()[i] += g.data()[i] * y.data()[i] * (1.0f - y.data()[i]);
    }
  });
}

VarPtr Dropout(const VarPtr& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  RELGRAPH_CHECK(p < 1.0f) << "dropout probability must be < 1";
  RELGRAPH_CHECK(rng != nullptr);
  auto mask = std::make_shared<Tensor>(a->rows(), a->cols());
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (rng->Uniform() < keep) {
      mask->data()[i] = inv_keep;
      out.data()[i] *= inv_keep;
    } else {
      mask->data()[i] = 0.0f;
      out.data()[i] = 0.0f;
    }
  }
  return MakeNode(std::move(out), {a}, [a, mask](Var* node) {
    if (!a->requires_grad()) return;
    a->grad().Add(relgraph::Mul(node->grad(), *mask));
  });
}

VarPtr ConcatCols(const std::vector<VarPtr>& parts) {
  RELGRAPH_CHECK(!parts.empty());
  int64_t rows = parts[0]->rows();
  int64_t cols = 0;
  for (const auto& p : parts) {
    RELGRAPH_CHECK(p->rows() == rows) << "concat row mismatch";
    cols += p->cols();
  }
  Tensor out(rows, cols);
  int64_t offset = 0;
  for (const auto& p : parts) {
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(p->value().data() + r * p->cols(),
                p->value().data() + (r + 1) * p->cols(),
                out.data() + r * cols + offset);
    }
    offset += p->cols();
  }
  return MakeNode(std::move(out), parts, [parts, cols](Var* node) {
    const Tensor& g = node->grad();
    int64_t off = 0;
    for (const auto& p : parts) {
      if (p->requires_grad()) {
        Tensor& pg = p->grad();
        const int64_t pcols = p->cols();
        for (int64_t r = 0; r < p->rows(); ++r) {
          kern::AddInto(pg.data() + r * pcols, g.data() + r * cols + off,
                        pcols);
        }
      }
      off += p->cols();
    }
  });
}

VarPtr SliceRows(const VarPtr& a, int64_t row_begin, int64_t num_rows) {
  if (row_begin == 0 && num_rows == a->rows()) return a;
  Tensor view = Tensor::RowView(a->value(), row_begin, num_rows);
  const bool needs = a->requires_grad();
  auto out = std::make_shared<Var>(std::move(view), needs);
  Var* raw = out.get();
  std::function<void()> backward;
  if (needs) {
    backward = [a, raw, row_begin]() {
      const Tensor& g = raw->grad();
      kern::AddInto(a->grad().data() + row_begin * g.cols(), g.data(),
                    g.numel());
    };
  }
  // The parent edge is wired even when no gradient flows: the node's value
  // aliases a's storage, so the edge is what keeps `a` alive.
  out->SetEdge({a}, std::move(backward));
  return out;
}

VarPtr GatherRows(const VarPtr& a, std::vector<int64_t> indices) {
  Tensor out = a->value().GatherRows(indices);
  auto idx = std::make_shared<std::vector<int64_t>>(std::move(indices));
  return MakeNode(std::move(out), {a}, [a, idx](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& ag = a->grad();
    const int64_t cols = g.cols();
    for (size_t i = 0; i < idx->size(); ++i) {
      const int64_t r = (*idx)[i];
      kern::AddInto(ag.data() + r * cols,
                    g.data() + static_cast<int64_t>(i) * cols, cols);
    }
  });
}

VarPtr SegmentSum(const VarPtr& a, std::vector<int64_t> segment_ids,
                  int64_t num_segments) {
  RELGRAPH_CHECK(static_cast<int64_t>(segment_ids.size()) == a->rows());
  const int64_t cols = a->cols();
  Tensor out(num_segments, cols);
  const float* src = a->value().data();
  float* dst = out.data();
  for (size_t i = 0; i < segment_ids.size(); ++i) {
    const int64_t s = segment_ids[i];
    RELGRAPH_CHECK(s >= 0 && s < num_segments) << "segment id " << s;
    kern::AddInto(dst + s * cols, src + static_cast<int64_t>(i) * cols,
                  cols);
  }
  auto ids = std::make_shared<std::vector<int64_t>>(std::move(segment_ids));
  return MakeNode(std::move(out), {a}, [a, ids, cols](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& ag = a->grad();
    for (size_t i = 0; i < ids->size(); ++i) {
      const int64_t s = (*ids)[i];
      kern::AddInto(ag.data() + static_cast<int64_t>(i) * cols,
                    g.data() + s * cols, cols);
    }
  });
}

VarPtr SegmentMean(const VarPtr& a, std::vector<int64_t> segment_ids,
                   int64_t num_segments) {
  RELGRAPH_CHECK(static_cast<int64_t>(segment_ids.size()) == a->rows());
  auto counts = std::make_shared<std::vector<float>>(
      static_cast<size_t>(num_segments), 0.0f);
  for (int64_t s : segment_ids) {
    RELGRAPH_CHECK(s >= 0 && s < num_segments) << "segment id " << s;
    (*counts)[static_cast<size_t>(s)] += 1.0f;
  }
  const int64_t cols = a->cols();
  Tensor out(num_segments, cols);
  const float* src = a->value().data();
  float* dst = out.data();
  for (size_t i = 0; i < segment_ids.size(); ++i) {
    const int64_t s = segment_ids[i];
    const float inv = 1.0f / (*counts)[static_cast<size_t>(s)];
    kern::AxpyInto(dst + s * cols, src + static_cast<int64_t>(i) * cols,
                   inv, cols);
  }
  auto ids = std::make_shared<std::vector<int64_t>>(std::move(segment_ids));
  return MakeNode(std::move(out), {a}, [a, ids, counts, cols](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& ag = a->grad();
    for (size_t i = 0; i < ids->size(); ++i) {
      const int64_t s = (*ids)[i];
      const float inv = 1.0f / (*counts)[static_cast<size_t>(s)];
      kern::AxpyInto(ag.data() + static_cast<int64_t>(i) * cols,
                     g.data() + s * cols, inv, cols);
    }
  });
}

VarPtr SegmentMax(const VarPtr& a, std::vector<int64_t> segment_ids,
                  int64_t num_segments) {
  RELGRAPH_CHECK(static_cast<int64_t>(segment_ids.size()) == a->rows());
  const int64_t cols = a->cols();
  Tensor out(num_segments, cols);
  // argmax[s*cols + c] = input row index achieving the max, or -1 if empty.
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(num_segments * cols), -1);
  for (size_t i = 0; i < segment_ids.size(); ++i) {
    const int64_t s = segment_ids[i];
    RELGRAPH_CHECK(s >= 0 && s < num_segments) << "segment id " << s;
    for (int64_t c = 0; c < cols; ++c) {
      const float v = a->value().at(static_cast<int64_t>(i), c);
      int64_t& am = (*argmax)[static_cast<size_t>(s * cols + c)];
      if (am < 0 || v > out.at(s, c)) {
        out.at(s, c) = v;
        am = static_cast<int64_t>(i);
      }
    }
  }
  // Empty segments stay at zero (argmax -1).
  return MakeNode(std::move(out), {a}, [a, argmax, cols,
                                        num_segments](Var* node) {
    if (!a->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& ag = a->grad();
    for (int64_t s = 0; s < num_segments; ++s) {
      for (int64_t c = 0; c < cols; ++c) {
        const int64_t i = (*argmax)[static_cast<size_t>(s * cols + c)];
        if (i >= 0) ag.at(i, c) += g.at(s, c);
      }
    }
  });
}

VarPtr LayerNorm(const VarPtr& x, const VarPtr& gain, const VarPtr& bias,
                 float eps) {
  const int64_t n = x->rows(), d = x->cols();
  RELGRAPH_CHECK(gain->rows() == 1 && gain->cols() == d);
  RELGRAPH_CHECK(bias->rows() == 1 && bias->cols() == d);
  RELGRAPH_CHECK(d > 0);
  auto xhat = std::make_shared<Tensor>(n, d);
  auto inv_sigma = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n));
  Tensor out(n, d);
  for (int64_t r = 0; r < n; ++r) {
    double mean = 0.0;
    for (int64_t c = 0; c < d; ++c) mean += x->value().at(r, c);
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      const double dv = x->value().at(r, c) - mean;
      var += dv * dv;
    }
    var /= static_cast<double>(d);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_sigma)[static_cast<size_t>(r)] = inv;
    for (int64_t c = 0; c < d; ++c) {
      const float xh =
          (x->value().at(r, c) - static_cast<float>(mean)) * inv;
      xhat->at(r, c) = xh;
      out.at(r, c) = gain->value().at(0, c) * xh + bias->value().at(0, c);
    }
  }
  return MakeNode(std::move(out), {x, gain, bias}, [x, gain, bias, xhat,
                                                    inv_sigma, n,
                                                    d](Var* node) {
    const Tensor& g = node->grad();
    for (int64_t r = 0; r < n; ++r) {
      // Per-row reductions for the x gradient.
      double sum_gy = 0.0, sum_gy_xhat = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double gy = g.at(r, c) * gain->value().at(0, c);
        sum_gy += gy;
        sum_gy_xhat += gy * xhat->at(r, c);
      }
      const double mean_gy = sum_gy / static_cast<double>(d);
      const double mean_gy_xhat = sum_gy_xhat / static_cast<double>(d);
      for (int64_t c = 0; c < d; ++c) {
        const double gy = g.at(r, c) * gain->value().at(0, c);
        if (x->requires_grad()) {
          x->grad().at(r, c) += static_cast<float>(
              (gy - mean_gy - xhat->at(r, c) * mean_gy_xhat) *
              (*inv_sigma)[static_cast<size_t>(r)]);
        }
        if (gain->requires_grad()) {
          gain->grad().at(0, c) += g.at(r, c) * xhat->at(r, c);
        }
        if (bias->requires_grad()) {
          bias->grad().at(0, c) += g.at(r, c);
        }
      }
    }
  });
}

VarPtr RowwiseDot(const VarPtr& a, const VarPtr& b) {
  RELGRAPH_CHECK(a->value().SameShape(b->value()));
  Tensor out(a->rows(), 1);
  for (int64_t r = 0; r < a->rows(); ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < a->cols(); ++c) {
      acc += static_cast<double>(a->value().at(r, c)) * b->value().at(r, c);
    }
    out.at(r, 0) = static_cast<float>(acc);
  }
  return MakeNode(std::move(out), {a, b}, [a, b](Var* node) {
    const Tensor& g = node->grad();
    for (int64_t r = 0; r < a->rows(); ++r) {
      const float gr = g.at(r, 0);
      if (a->requires_grad()) {
        for (int64_t c = 0; c < a->cols(); ++c) {
          a->grad().at(r, c) += gr * b->value().at(r, c);
        }
      }
      if (b->requires_grad()) {
        for (int64_t c = 0; c < b->cols(); ++c) {
          b->grad().at(r, c) += gr * a->value().at(r, c);
        }
      }
    }
  });
}

VarPtr Sum(const VarPtr& a) {
  Tensor out(1, 1);
  out.at(0, 0) = a->value().Sum();
  return MakeNode(std::move(out), {a}, [a](Var* node) {
    if (!a->requires_grad()) return;
    const float g = node->grad().at(0, 0);
    Tensor& ag = a->grad();
    for (int64_t i = 0; i < ag.numel(); ++i) ag.data()[i] += g;
  });
}

VarPtr Mean(const VarPtr& a) {
  RELGRAPH_CHECK(a->value().numel() > 0);
  return Scale(Sum(a), 1.0f / static_cast<float>(a->value().numel()));
}

VarPtr SoftmaxCrossEntropy(const VarPtr& logits,
                           const std::vector<int64_t>& labels) {
  const int64_t n = logits->rows();
  const int64_t k = logits->cols();
  RELGRAPH_CHECK(static_cast<int64_t>(labels.size()) == n);
  auto probs = std::make_shared<Tensor>(SoftmaxRows(logits->value()));
  double loss = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    RELGRAPH_CHECK(labels[r] >= 0 && labels[r] < k)
        << "label " << labels[r] << " out of range for " << k << " classes";
    loss -= std::log(std::max(1e-12, static_cast<double>(
                                          probs->at(r, labels[r]))));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(n, 1));
  auto lab = std::make_shared<std::vector<int64_t>>(labels);
  return MakeNode(std::move(out), {logits}, [logits, probs, lab, n,
                                             k](Var* node) {
    if (!logits->requires_grad()) return;
    const float g = node->grad().at(0, 0) / static_cast<float>(n);
    Tensor& lg = logits->grad();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < k; ++c) {
        float p = probs->at(r, c);
        lg.at(r, c) += g * (p - (c == (*lab)[r] ? 1.0f : 0.0f));
      }
    }
  });
}

VarPtr BinaryCrossEntropyWithLogits(const VarPtr& logits,
                                    const Tensor& targets) {
  RELGRAPH_CHECK(logits->cols() == 1 && targets.cols() == 1);
  RELGRAPH_CHECK(logits->rows() == targets.rows());
  const int64_t n = logits->rows();
  auto sig = std::make_shared<Tensor>(n, 1);
  double loss = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    const double z = logits->value().at(r, 0);
    const double t = targets.at(r, 0);
    // Numerically stable: max(z,0) - z*t + log(1 + exp(-|z|)).
    loss += std::max(z, 0.0) - z * t + std::log1p(std::exp(-std::fabs(z)));
    sig->at(r, 0) = static_cast<float>(1.0 / (1.0 + std::exp(-z)));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(n, 1));
  auto tgt = std::make_shared<Tensor>(targets);
  return MakeNode(std::move(out), {logits}, [logits, sig, tgt, n](Var* node) {
    if (!logits->requires_grad()) return;
    const float g = node->grad().at(0, 0) / static_cast<float>(n);
    for (int64_t r = 0; r < n; ++r) {
      logits->grad().at(r, 0) += g * (sig->at(r, 0) - tgt->at(r, 0));
    }
  });
}

VarPtr MseLoss(const VarPtr& pred, const Tensor& targets) {
  RELGRAPH_CHECK(pred->value().SameShape(targets));
  const int64_t n = pred->value().numel();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred->value().data()[i] - targets.data()[i];
    loss += d * d;
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(n, 1));
  auto tgt = std::make_shared<Tensor>(targets);
  return MakeNode(std::move(out), {pred}, [pred, tgt, n](Var* node) {
    if (!pred->requires_grad()) return;
    const float g = 2.0f * node->grad().at(0, 0) / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      pred->grad().data()[i] += g * (pred->value().data()[i] -
                                     tgt->data()[i]);
    }
  });
}

VarPtr L1Loss(const VarPtr& pred, const Tensor& targets) {
  RELGRAPH_CHECK(pred->value().SameShape(targets));
  const int64_t n = pred->value().numel();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    loss += std::fabs(pred->value().data()[i] - targets.data()[i]);
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(n, 1));
  auto tgt = std::make_shared<Tensor>(targets);
  return MakeNode(std::move(out), {pred}, [pred, tgt, n](Var* node) {
    if (!pred->requires_grad()) return;
    const float g = node->grad().at(0, 0) / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      const float d = pred->value().data()[i] - tgt->data()[i];
      pred->grad().data()[i] += g * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
    }
  });
}

}  // namespace ag

void Backward(const VarPtr& root) {
  RELGRAPH_CHECK(root->value().numel() == 1)
      << "Backward root must be scalar";
  // Topological order via iterative post-order DFS.
  std::vector<Var*> order;
  std::unordered_set<Var*> visited;
  std::vector<std::pair<Var*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents_.size()) {
      Var* next = node->parents_[child].get();
      ++child;
      if (next->requires_grad() && !visited.count(next)) {
        visited.insert(next);
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  root->grad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn_) (*it)->backward_fn_();
  }
}

}  // namespace relgraph

#ifndef RELGRAPH_CORE_ATOMIC_IO_H_
#define RELGRAPH_CORE_ATOMIC_IO_H_

#include <string>
#include <string_view>

#include "core/status.h"

namespace relgraph {

/// Atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// flushes it to disk (fsync), then renames it into place. A crash at any
/// point leaves either the previous file intact or the complete new one —
/// never a truncated mix. Every durable artifact (checkpoints, tensor
/// bundles, CSV exports, snapshots) goes through this helper.
///
/// Instrumented with FaultSite::kAtomicWriteOpen / kAtomicWriteShort /
/// kAtomicWriteRename for robustness tests.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// True when `path` exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace relgraph

#endif  // RELGRAPH_CORE_ATOMIC_IO_H_

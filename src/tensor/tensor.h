#ifndef RELGRAPH_TENSOR_TENSOR_H_
#define RELGRAPH_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relgraph {

/// Dense row-major float32 matrix (the only tensor rank the GNN stack
/// needs; vectors are 1×n or n×1 matrices).
///
/// `Tensor` is a plain value type with no autograd state — see
/// `tensor/autograd.h` for differentiable computation built on top of it.
///
/// Storage comes from the process-wide `FloatBufferPool`: constructors
/// acquire a recycled buffer and the destructor returns it, so steady-state
/// batch loops allocate nothing from the heap. A tensor can also be a
/// non-owning row *view* into another tensor (`RowView`), in which case it
/// carries no storage at all.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Uninitialized-to-zero tensor of the given shape.
  Tensor(int64_t rows, int64_t cols);

  /// Builds from a flat row-major buffer; `data.size()` must equal
  /// rows*cols.
  Tensor(int64_t rows, int64_t cols, std::vector<float> data);

  /// Copies deep-copy into pooled storage (copying a view materializes
  /// it); moves transfer the buffer or the aliasing pointer.
  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Zero-copy view of `nrows` consecutive rows of `parent` starting at
  /// `row_begin`. The view aliases the parent's storage: the caller must
  /// keep the parent alive for the view's lifetime (autograd nodes do this
  /// through their parent edge) and must not write through the view unless
  /// it also owns the parent.
  static Tensor RowView(const Tensor& parent, int64_t row_begin,
                        int64_t nrows);

  bool is_view() const { return view_data_ != nullptr; }

  static Tensor Zeros(int64_t rows, int64_t cols);
  static Tensor Ones(int64_t rows, int64_t cols);
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Identity(int64_t n);

  /// 1×n row vector from values.
  static Tensor Row(std::vector<float> values);

  /// n×1 column vector from values.
  static Tensor Col(std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  float& at(int64_t r, int64_t c) { return data()[r * cols_ + c]; }
  float at(int64_t r, int64_t c) const { return data()[r * cols_ + c]; }

  float* data() { return view_data_ ? view_data_ : data_.data(); }
  const float* data() const {
    return view_data_ ? view_data_ : data_.data();
  }

  /// Scalar accessor; requires numel()==1.
  float item() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// In-place fill.
  void Fill(float value);

  /// In-place elementwise accumulate; shapes must match.
  void Add(const Tensor& other);

  /// In-place scale.
  void Scale(float s);

  /// Sum of all entries.
  float Sum() const;

  /// Mean of all entries (0 for empty).
  float Mean() const;

  /// Max absolute entry (0 for empty).
  float AbsMax() const;

  /// Frobenius norm.
  float Norm() const;

  /// Returns a new tensor with the given rows gathered (out[i] =
  /// this[indices[i]]).
  Tensor GatherRows(const std::vector<int64_t>& indices) const;

  /// Transposed copy.
  Tensor Transposed() const;

  /// Human-readable dump (small tensors only; larger are summarized).
  std::string ToString() const;

 private:
  /// Returns owned storage (if any) to the pool and drops view aliasing.
  void ReleaseStorage();

  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;        // owned storage; empty for views
  float* view_data_ = nullptr;     // aliased storage when is_view()
};

/// A weight matrix pre-packed into the cache-friendly panel layout the
/// packed GEMM microkernel consumes (see kern::PackB). Pack once per
/// weight version, reuse across every batch. Movable, not copyable; the
/// panel buffer is pooled like tensor storage.
struct PackedMatrix {
  PackedMatrix() = default;
  ~PackedMatrix();
  PackedMatrix(PackedMatrix&&) noexcept = default;
  PackedMatrix& operator=(PackedMatrix&&) noexcept = default;
  PackedMatrix(const PackedMatrix&) = delete;
  PackedMatrix& operator=(const PackedMatrix&) = delete;

  int64_t rows = 0;          ///< logical k of the source k×n matrix
  int64_t cols = 0;          ///< logical n of the source k×n matrix
  std::vector<float> data;   ///< panel-layout buffer
};

/// Packs `b` for reuse as the right operand of MatMulPacked.
PackedMatrix PackForMatMul(const Tensor& b);

/// out = a @ b using the packed panels; bit-identical to MatMul(a, b_src).
Tensor MatMulPacked(const Tensor& a, const PackedMatrix& b);

/// out = a @ b. Shapes must be compatible; checked.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// out = a @ b^T without materializing the transpose.
Tensor MatMulBT(const Tensor& a, const Tensor& b);

/// out = a^T @ b without materializing the transpose.
Tensor MatMulAT(const Tensor& a, const Tensor& b);

/// Elementwise binary helpers (shape-checked).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a 1×c row vector to every row of an r×c matrix.
Tensor AddRowBroadcast(const Tensor& m, const Tensor& row);

/// Column-wise sum producing a 1×c row vector.
Tensor SumRows(const Tensor& m);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& logits);

}  // namespace relgraph

#endif  // RELGRAPH_TENSOR_TENSOR_H_

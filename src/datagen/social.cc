#include "datagen/social.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/logging.h"
#include "core/rng.h"

namespace relgraph {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Database MakeSocialDb(const SocialConfig& config) {
  RELGRAPH_CHECK(config.num_users > 1);
  Rng rng(config.seed);
  Database db("social");

  // ---- users ------------------------------------------------------------
  TableSchema users("users");
  users.AddColumn("id", DataType::kInt64, false)
      .AddColumn("karma_seed", DataType::kFloat64, false)
      .AddColumn("verified", DataType::kBool, false)
      .SetPrimaryKey("id");
  Table* user_t = db.AddTable(users).value();

  struct UserState {
    double sociability;  // base posting/commenting drive
    double quality;      // latent content quality
    double morale;       // evolves with feedback
    std::vector<int64_t> followers;
  };
  std::vector<UserState> ustate(static_cast<size_t>(config.num_users));
  for (int64_t u = 0; u < config.num_users; ++u) {
    UserState& s = ustate[static_cast<size_t>(u)];
    s.sociability = Clamp(rng.Exponential(1.0), 0.1, 4.0);
    s.quality = rng.Uniform(0.0, 1.0);
    s.morale = 1.0;
    // karma_seed is a weak, noisy proxy of quality (hop-0 signal only).
    const double karma = Clamp(s.quality + rng.Normal(0.0, 0.5), 0.0, 2.0);
    RELGRAPH_CHECK(user_t->AppendRow({Value(u + 1), Value(karma),
                                      Value(rng.Bernoulli(0.1))})
                       .ok());
  }

  // ---- follows (preferential attachment on quality) ----------------------
  TableSchema follows("follows");
  follows.AddColumn("id", DataType::kInt64, false)
      .AddColumn("follower_id", DataType::kInt64, false)
      .AddColumn("followee_id", DataType::kInt64, false)
      .AddColumn("ts", DataType::kTimestamp, false)
      .SetPrimaryKey("id")
      .AddForeignKey("follower_id", "users")
      .AddForeignKey("followee_id", "users")
      .SetTimeColumn("ts");
  Table* follow_t = db.AddTable(follows).value();

  std::vector<double> attract(static_cast<size_t>(config.num_users));
  for (int64_t u = 0; u < config.num_users; ++u) {
    attract[static_cast<size_t>(u)] =
        0.2 + ustate[static_cast<size_t>(u)].quality;
  }
  int64_t next_follow = 1;
  for (int64_t u = 0; u < config.num_users; ++u) {
    const int n = rng.Poisson(config.mean_follows);
    std::vector<bool> chosen(static_cast<size_t>(config.num_users), false);
    for (int i = 0; i < n; ++i) {
      const int64_t v = rng.Categorical(attract);
      if (v == u || chosen[static_cast<size_t>(v)]) continue;
      chosen[static_cast<size_t>(v)] = true;
      ustate[static_cast<size_t>(v)].followers.push_back(u);
      const Timestamp ts = static_cast<Timestamp>(
          rng.Uniform(0.0, 10.0) * kDay);  // follows formed early
      RELGRAPH_CHECK(follow_t->AppendRow({Value(next_follow++), Value(u + 1),
                                          Value(v + 1), Value::Time(ts)})
                         .ok());
    }
  }

  // ---- posts / comments / votes ------------------------------------------
  TableSchema posts("posts");
  posts.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64, false)
      .AddColumn("ts", DataType::kTimestamp, false)
      .AddColumn("length", DataType::kFloat64, false)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .SetTimeColumn("ts");
  Table* post_t = db.AddTable(posts).value();

  TableSchema comments("comments");
  comments.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64, false)
      .AddColumn("post_id", DataType::kInt64, false)
      .AddColumn("ts", DataType::kTimestamp, false)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .AddForeignKey("post_id", "posts")
      .SetTimeColumn("ts");
  Table* comment_t = db.AddTable(comments).value();

  TableSchema votes("votes");
  votes.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64, false)
      .AddColumn("post_id", DataType::kInt64, false)
      .AddColumn("ts", DataType::kTimestamp, false)
      .AddColumn("up", DataType::kBool, false)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .AddForeignKey("post_id", "posts")
      .SetTimeColumn("ts");
  Table* vote_t = db.AddTable(votes).value();

  const double horizon = static_cast<double>(config.horizon_days);
  const double avg_followers = std::max(config.mean_follows, 1.0);
  int64_t next_post = 1, next_comment = 1, next_vote = 1;
  for (int64_t u = 0; u < config.num_users; ++u) {
    UserState& s = ustate[static_cast<size_t>(u)];
    double t_days = rng.Uniform(0.0, 3.0);
    while (true) {
      const double rate =
          s.sociability * Clamp(s.morale, 0.05, 2.0) /
          config.mean_post_interval_days;
      t_days += rng.Exponential(std::max(rate, 1e-4));
      if (t_days >= horizon) break;
      const Timestamp ts = static_cast<Timestamp>(t_days * kDay);
      RELGRAPH_CHECK(post_t->AppendRow({Value(next_post), Value(u + 1),
                                        Value::Time(ts),
                                        Value(Clamp(rng.Normal(300.0, 150.0),
                                                    10.0, 2000.0))})
                         .ok());
      // Feedback: followers comment/vote in proportion to content quality
      // and audience size. This is the 2-hop signal that sustains morale.
      const double audience =
          static_cast<double>(s.followers.size()) / avg_followers;
      const double expected_feedback = 2.5 * s.quality * (0.3 + audience);
      const int n_comments = rng.Poisson(expected_feedback);
      for (int i = 0; i < n_comments && !s.followers.empty(); ++i) {
        const int64_t commenter =
            s.followers[rng.UniformU64(s.followers.size())];
        const Timestamp cts =
            ts + static_cast<Timestamp>(rng.Uniform(0.02, 2.0) * kDay);
        if (cts >= static_cast<Timestamp>(horizon * kDay)) continue;
        RELGRAPH_CHECK(comment_t->AppendRow({Value(next_comment++),
                                             Value(commenter + 1),
                                             Value(next_post),
                                             Value::Time(cts)})
                           .ok());
      }
      const int n_votes = rng.Poisson(expected_feedback * 1.5);
      int net_up = 0;
      for (int i = 0; i < n_votes && !s.followers.empty(); ++i) {
        const int64_t voter = s.followers[rng.UniformU64(s.followers.size())];
        const bool up = rng.Bernoulli(Clamp(0.3 + 0.6 * s.quality, 0.0, 1.0));
        net_up += up ? 1 : -1;
        const Timestamp vts =
            ts + static_cast<Timestamp>(rng.Uniform(0.01, 1.0) * kDay);
        if (vts >= static_cast<Timestamp>(horizon * kDay)) continue;
        RELGRAPH_CHECK(vote_t->AppendRow({Value(next_vote++),
                                          Value(voter + 1), Value(next_post),
                                          Value::Time(vts), Value(up)})
                           .ok());
      }
      const double feedback_score =
          Clamp((n_comments + 0.5 * net_up) / 3.0, 0.0, 2.0);
      s.morale = Clamp(0.75 * s.morale + 0.25 * feedback_score, 0.05, 2.0);
      ++next_post;
    }
  }

  return db;
}

}  // namespace relgraph

file(REMOVE_RECURSE
  "librelgraph_sampler.a"
)

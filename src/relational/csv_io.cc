#include "relational/csv_io.h"

#include "core/csv.h"
#include "core/string_util.h"

namespace relgraph {

namespace {

Result<Value> ParseCell(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      RELGRAPH_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case DataType::kFloat64: {
      RELGRAPH_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case DataType::kBool: {
      std::string lower = ToLower(text);
      if (lower == "true" || lower == "1") return Value(true);
      if (lower == "false" || lower == "0") return Value(false);
      return Status::ParseError("invalid BOOL literal: " + text);
    }
    case DataType::kString:
      return Value(text);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status LoadTableFromCsv(std::string_view csv_text, Table* table) {
  if (table->num_rows() != 0) {
    return Status::FailedPrecondition("table '" + table->name() +
                                      "' is not empty");
  }
  RELGRAPH_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv_text));
  const auto& specs = table->schema().columns();
  if (doc.header.size() != specs.size()) {
    return Status::InvalidArgument(StrFormat(
        "CSV has %zu columns, schema of '%s' has %zu", doc.header.size(),
        table->name().c_str(), specs.size()));
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (doc.header[i] != specs[i].name) {
      return Status::InvalidArgument(StrFormat(
          "CSV column %zu is '%s', expected '%s'", i, doc.header[i].c_str(),
          specs[i].name.c_str()));
    }
  }
  std::vector<Value> row(specs.size());
  for (size_t r = 0; r < doc.rows.size(); ++r) {
    for (size_t c = 0; c < specs.size(); ++c) {
      auto v = ParseCell(doc.rows[r][c], specs[c].type);
      if (!v.ok()) {
        return Status::ParseError(StrFormat(
            "row %zu column '%s': %s", r + 1, specs[c].name.c_str(),
            v.status().message().c_str()));
      }
      row[c] = std::move(v).value();
    }
    RELGRAPH_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return Status::OK();
}

Status LoadTableFromCsvFile(const std::string& path, Table* table) {
  RELGRAPH_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  // Re-serialize is wasteful; load directly by reusing the text path:
  return LoadTableFromCsv(WriteCsv(doc), table);
}

std::string TableToCsv(const Table& table) {
  CsvDocument doc;
  for (const auto& spec : table.schema().columns()) {
    doc.header.push_back(spec.name);
  }
  doc.rows.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(doc.header.size());
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      row.push_back(table.column(c).GetValue(r).ToString());
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsv(doc);
}

Status SaveDatabaseCsv(const Database& db, const std::string& dir) {
  for (const auto& t : db.tables()) {
    CsvDocument doc;
    auto csv = TableToCsv(*t);
    RELGRAPH_ASSIGN_OR_RETURN(doc, ParseCsv(csv));
    RELGRAPH_RETURN_IF_ERROR(
        WriteCsvFile(dir + "/" + t->name() + ".csv", doc));
  }
  return Status::OK();
}

}  // namespace relgraph

#ifndef RELGRAPH_PQ_ENGINE_H_
#define RELGRAPH_PQ_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "db2graph/graph_builder.h"
#include "pq/analyzer.h"
#include "pq/label_builder.h"
#include "train/task.h"
#include "train/trainer.h"

namespace relgraph {

/// A predictive query compiled for online serving: everything an
/// InferenceEngine needs to answer Score() requests for a trained
/// checkpoint of the same query — task kind, resolved entity type, the
/// graph view, and the GNN/sampler configuration the checkpoint was
/// trained with. No training table or split is materialized.
struct ServePlan {
  ParsedQuery parsed;
  TaskKind kind = TaskKind::kBinaryClassification;
  int64_t num_classes = 2;

  /// FOR EACH table and its node type in `graph`.
  std::string entity_table;
  NodeTypeId entity_type = 0;

  /// The engine's lazily-built graph view (owned by the engine; the plan
  /// is valid while the engine lives).
  const HeteroGraph* graph = nullptr;

  GnnConfig gnn;
  SamplerOptions sampler;
  uint64_t seed = 1;

  /// Serving-time cutoff: one past the database's max event time, so
  /// every recorded event is visible to feature sampling.
  Timestamp now_cutoff = 0;

  /// Numeric precision the InferenceEngine serves this query at
  /// (WITH precision='fp32'|'bf16'|'int8'; default fp32). Like `seed`,
  /// the plan's value overrides ServeOptions when an engine is built from
  /// the plan; the RELGRAPH_PRECISION env var overrides both.
  Precision precision = Precision::kFp32;
};

/// Everything a predictive query returns: the materialized task, the
/// temporal split, the trained model's scores on the held-out test
/// cutoff, and the headline metrics.
struct QueryResult {
  ParsedQuery parsed;
  TaskKind kind = TaskKind::kBinaryClassification;
  std::string model;

  TrainingTable table;
  Split split;

  /// "AUC", "MAE" or "MAP@10" depending on the task.
  std::string metric_name;
  double train_metric = 0.0;
  double val_metric = 0.0;
  double test_metric = 0.0;

  /// Scores aligned with split.test (probability / value); empty for
  /// ranking.
  std::vector<double> test_scores;

  /// Ranking: top-10 target rows per test example.
  std::vector<std::vector<int64_t>> test_rankings;

  double seconds = 0.0;

  /// One-paragraph human-readable report.
  std::string Summary() const;
};

/// Writes the held-out (test-cutoff) predictions of a query result as CSV:
/// `entity_pk,cutoff,label,score` for scalar tasks, or
/// `entity_pk,cutoff,rank,target_pk` rows for ranking tasks.
Status ExportTestPredictionsCsv(const QueryResult& result,
                                const Database& db,
                                const std::string& path);

/// Engine configuration.
struct EngineOptions {
  GraphBuilderOptions graph;
  uint64_t seed = 1;
  bool verbose = false;

  /// Validate the database once before the first query runs (PK
  /// uniqueness, FK resolution). Strongly recommended: every downstream
  /// stage assumes a consistent DB.
  bool validate_db = true;

  /// When validation fails, degrade gracefully instead of erroring: the
  /// audit report is logged and kept (see audit()), and the DB→graph
  /// conversion skips dangling FKs. Off by default — dirty data should be
  /// an explicit decision.
  bool allow_degraded = false;

  /// Default training-checkpoint path for GNN queries (overridable per
  /// query via WITH checkpoint='path'); empty disables checkpointing.
  std::string checkpoint_path;

  /// Resume GNN training from `checkpoint_path` when the file exists
  /// (overridable per query via WITH resume=true|false).
  bool resume = false;
};

/// Executes predictive queries against one database: parse → analyze →
/// materialize training table → temporal split → train the requested
/// model → evaluate. The DB→graph conversion is done lazily once and
/// shared across queries.
///
/// Supported models (USING clause):
///   GNN        heterogeneous GraphSAGE over the DB-as-graph (default)
///   GBDT       gradient-boosted trees on hand-engineered temporal
///              aggregates (WITH hops=0|1|2 controls the ladder)
///   MLP        tabular MLP (default hops=0: entity columns only)
///   LINEAR     logistic/linear model (default hops=0)
///   CONSTANT   majority/mean predictor
///   POPULAR    (ranking) rank targets by pre-cutoff global popularity
///   COOCCUR    (ranking) rank targets by co-occurrence with the
///              entity's own history
///
/// Common WITH options: epochs, lr, batch, seed; GNN adds layers, hidden,
/// fanout, dropout, patience, agg=mean|sum|max, policy=uniform|recent,
/// temporal=true|false; tabular adds hops.
class PredictiveQueryEngine {
 public:
  explicit PredictiveQueryEngine(const Database* db,
                                 EngineOptions options = {});

  /// Parses and runs a query end to end.
  Result<QueryResult> Execute(const std::string& query_text);

  /// Runs an already-parsed query.
  Result<QueryResult> ExecuteParsed(const ParsedQuery& parsed);

  /// Compiles the query without training and returns a human-readable
  /// execution plan: resolved schema objects, task kind, cutoff schedule,
  /// example counts per split, label statistics, and the model plan.
  /// (`Execute` also accepts queries prefixed with the EXPLAIN keyword and
  /// is then equivalent to calling this.)
  Result<std::string> Explain(const std::string& query_text);

  /// The lazily-built graph view of the database.
  Result<const DbGraph*> Graph();

  /// Compiles a query for online serving (no training): resolves the
  /// schema, builds the graph view, and returns the ServePlan an
  /// InferenceEngine consumes together with a checkpoint trained by the
  /// same query (same WITH options). Ranking queries are not servable
  /// through this path.
  Result<ServePlan> CompileForServing(const std::string& query_text);

  const Database& db() const { return *db_; }

  /// True when the DB failed validation and the engine is running in the
  /// explicitly-degraded (lenient) mode permitted by allow_degraded.
  bool degraded() const { return degraded_; }

  /// Integrity audit of a degraded database (empty for a clean DB).
  const DatabaseIntegrityReport& audit() const { return audit_; }

 private:
  /// Runs Database::Validate() once, lazily, before the first query. A
  /// clean DB validates silently; a dirty one either fails every query
  /// (default) or, with allow_degraded, flips the engine into lenient
  /// graph construction and records the audit report.
  Status EnsureValidated();

  /// ExecuteParsed body; the public wrapper adds the pq/execute span and
  /// the query/error counters around it.
  Result<QueryResult> ExecuteParsedImpl(const ParsedQuery& parsed);

  Result<QueryResult> RunGnn(const ResolvedQuery& rq, QueryResult* result);
  Result<QueryResult> RunTabular(const ResolvedQuery& rq,
                                 QueryResult* result);
  Result<QueryResult> RunRankingHeuristic(const ResolvedQuery& rq,
                                          QueryResult* result);

  const Database* db_;
  EngineOptions options_;
  std::unique_ptr<DbGraph> graph_;
  bool validated_ = false;
  bool degraded_ = false;
  Status db_status_;
  DatabaseIntegrityReport audit_;
};

}  // namespace relgraph

#endif  // RELGRAPH_PQ_ENGINE_H_

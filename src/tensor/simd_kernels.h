#ifndef RELGRAPH_TENSOR_SIMD_KERNELS_H_
#define RELGRAPH_TENSOR_SIMD_KERNELS_H_

#include <cstdint>

namespace relgraph {
namespace kern {

/// Low-level tensor microkernels with two interchangeable builds selected
/// by the `RELGRAPH_SIMD` CMake option: AVX2 intrinsics, or a portable
/// scalar twin.
///
/// **The two builds are bit-identical.** Every kernel's per-output
/// operation sequence is fixed by contract, not by implementation:
///
///  - GEMM-family outputs accumulate `round(a*b)` then add, ascending over
///    the inner dimension — the textbook order — which no register tiling,
///    column blocking, or B-packing can change (lanes are independent
///    output elements).
///  - Dot-product-family outputs (`MatMulBT`) use `LaneDot`: eight float
///    partial sums (lane l takes elements 8t+l), combined in the fixed
///    tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then the tail folded in
///    ascending order. The scalar build implements the same lanes in plain
///    code.
///  - `ExpRef` is a shared Cephes-style polynomial; the AVX2 path applies
///    the identical operation sequence per lane.
///
/// FMA contraction is deliberately OFF (the SIMD translation unit builds
/// with `-mavx2 -ffp-contract=off`, no `-mfma`): a fused multiply-add
/// rounds once where the contract rounds twice, which would fork the
/// numeric results between the SIMD and portable builds and invalidate
/// the committed golden files in one of them. AVX2 mul+add still clears
/// the kernel perf targets by a wide margin.
///
/// All kernels are chunk-local (no internal threading): callers hand them
/// disjoint output ranges from `ParallelFor`, so thread-count bit-equality
/// is inherited from the PR-2 runtime contract.

/// True when this build compiled the AVX2 path.
bool SimdEnabled();

/// "avx2" or "scalar" (for bench records and logs).
const char* SimdName();

// ----------------------------------------------------------- elementwise

/// dst[i] += src[i].
void AddInto(float* dst, const float* src, int64_t n);

/// o[i] = a[i] - b[i].
void SubOut(float* o, const float* a, const float* b, int64_t n);

/// o[i] = a[i] * b[i].
void MulOut(float* o, const float* a, const float* b, int64_t n);

/// dst[i] *= s.
void ScaleInPlace(float* dst, float s, int64_t n);

/// dst[i] += s * src[i] (product rounded, then added).
void AxpyInto(float* dst, const float* src, float s, int64_t n);

/// o[i] = max(0, x[i]); NaN maps to 0 like std::max(0.0f, x).
void ReluOut(float* o, const float* x, int64_t n);

/// dst[i] += (x[i] > 0 ? g[i] : 0.0f).
void ReluGradAccum(float* dst, const float* g, const float* x, int64_t n);

// ---------------------------------------------------- GEMM row-chunk kernels

/// Output rows [i0, i1) of A(m×k) @ B(k×n) into O (row-major, pre-zeroed
/// rows are fully owned by this call and overwritten).
void GemmRowChunk(const float* A, const float* B, float* O, int64_t i0,
                  int64_t i1, int64_t k, int64_t n);

/// Same contract as GemmRowChunk, reading B from the PackB panel layout.
/// Bit-identical to the unpacked kernel (packing only relocates bytes).
void GemmPackedRowChunk(const float* A, const float* packed_b, float* O,
                        int64_t i0, int64_t i1, int64_t k, int64_t n);

/// Output rows [i0, i1) of A(m×k) @ B(n×k)^T into O(m×n);
/// O[i][j] = LaneDot(A row i, B row j, k).
void GemmBTRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t k, int64_t n);

/// Output rows [i0, i1) of A(k×m)^T @ B(k×n) into O(m×n). O rows in the
/// chunk must be pre-zeroed; accumulation sweeps p ascending (p outermost,
/// streaming one row of A and B per pass).
void GemmATRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t m, int64_t k, int64_t n);

// ------------------------------------------------------------ B packing

/// Width of one packed column panel.
constexpr int64_t kPanelWidth = 16;

/// Floats needed to pack a k×n matrix: k * n rounded up to whole panels.
int64_t PackedSize(int64_t k, int64_t n);

/// Packs row-major B(k×n) into column panels of kPanelWidth: panel jp
/// stores rows p=0..k-1 of columns [jp*16, jp*16+16) contiguously,
/// zero-padding the last panel. Output must hold PackedSize(k, n) floats.
void PackB(const float* B, int64_t k, int64_t n, float* packed);

// ----------------------------------------------------- dot-product contract

/// The MatMulBT per-output contract: eight float lane sums over k,
/// fixed-tree combine, ascending tail. Exposed so tests can pin the SIMD
/// build against a plain-C++ reference bit for bit.
float LaneDot(const float* a, const float* b, int64_t k);

// ------------------------------------------------------------- softmax rows

/// Shared exp polynomial (Cephes-style, float, ~2 ulp); the AVX2 lane
/// version applies the identical operation sequence.
float ExpRef(float x);

/// out[i] = ExpRef(x[i] - shift).
void ExpShiftedRow(float* out, const float* x, float shift, int64_t n);

/// Max entry of x (n >= 1); ties and -0/+0 resolve identically in both
/// builds; all-finite inputs are order-independent.
float RowMax(const float* x, int64_t n);

}  // namespace kern
}  // namespace relgraph

#endif  // RELGRAPH_TENSOR_SIMD_KERNELS_H_

# Empty compiler generated dependencies file for bench_fig6_db2graph_scaling.
# This may be replaced when dependencies are built.

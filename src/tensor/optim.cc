#include "tensor/optim.h"

#include <cmath>

namespace relgraph {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    const Tensor& g = p->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) p->grad().Scale(scale);
  }
  return norm;
}

Sgd::Sgd(std::vector<VarPtr> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.emplace_back(p->value().rows(), p->value().cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    for (int64_t j = 0; j < w.numel(); ++j) {
      float grad = g.data()[j] + weight_decay_ * w.data()[j];
      if (momentum_ > 0.0f) {
        float& v = velocity_[i].data()[j];
        v = momentum_ * v + grad;
        grad = v;
      }
      w.data()[j] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

AdamState Adam::GetState() const { return AdamState{t_, m_, v_}; }

Status Adam::SetState(const AdamState& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    return Status::InvalidArgument("Adam state has wrong slot count");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!state.m[i].SameShape(params_[i]->value()) ||
        !state.v[i].SameShape(params_[i]->value())) {
      return Status::InvalidArgument("Adam state slot shape mismatch");
    }
  }
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = *params_[i];
    Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    for (int64_t j = 0; j < w.numel(); ++j) {
      const float grad = g.data()[j];
      float& m = m_[i].data()[j];
      float& v = v_[i].data()[j];
      m = beta1_ * m + (1.0f - beta1_) * grad;
      v = beta2_ * v + (1.0f - beta2_) * grad * grad;
      const double mhat = m / bias1;
      const double vhat = v / bias2;
      // Decoupled weight decay (AdamW).
      w.data()[j] -= static_cast<float>(
          lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w.data()[j]));
    }
  }
}

}  // namespace relgraph

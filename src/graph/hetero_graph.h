#ifndef RELGRAPH_GRAPH_HETERO_GRAPH_H_
#define RELGRAPH_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/time.h"
#include "tensor/tensor.h"

namespace relgraph {

/// Identifies a node type (one per database table).
using NodeTypeId = int32_t;

/// Identifies a directed edge type (one per FK direction).
using EdgeTypeId = int32_t;

/// A directed, typed, timestamped multigraph stored as one CSR structure
/// per edge type — the in-memory form of a relational database after
/// DB→graph conversion.
///
/// Node ids are dense per node type: node `i` of type "orders" is row `i`
/// of the orders table. Every node carries a timestamp (kNoTimestamp for
/// static dimension rows) and every edge carries the timestamp of the fact
/// row that induced it, which is what makes leakage-free temporal neighbor
/// sampling possible.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  /// Registers a node type; returns its id. Fails on duplicates.
  Result<NodeTypeId> AddNodeType(const std::string& name, int64_t num_nodes);

  /// Attaches a feature matrix (num_nodes × d) to a node type.
  Status SetNodeFeatures(NodeTypeId type, Tensor features);

  /// Attaches per-node timestamps (size num_nodes).
  Status SetNodeTimes(NodeTypeId type, std::vector<Timestamp> times);

  /// Registers a directed edge type and bulk-loads its edges as parallel
  /// arrays (src node id, dst node id, edge timestamp). Builds CSR by src.
  Result<EdgeTypeId> AddEdgeType(const std::string& name, NodeTypeId src_type,
                                 NodeTypeId dst_type,
                                 const std::vector<int64_t>& src,
                                 const std::vector<int64_t>& dst,
                                 const std::vector<Timestamp>& times);

  // -------------------------------------------------------------- lookup

  int32_t num_node_types() const {
    return static_cast<int32_t>(node_names_.size());
  }
  int32_t num_edge_types() const {
    return static_cast<int32_t>(edge_names_.size());
  }

  Result<NodeTypeId> FindNodeType(const std::string& name) const;
  Result<EdgeTypeId> FindEdgeType(const std::string& name) const;

  const std::string& node_type_name(NodeTypeId t) const {
    return node_names_[t];
  }
  const std::string& edge_type_name(EdgeTypeId e) const {
    return edge_names_[e];
  }

  int64_t num_nodes(NodeTypeId t) const { return num_nodes_[t]; }
  int64_t num_edges(EdgeTypeId e) const {
    return static_cast<int64_t>(csr_[e].neighbors.size());
  }
  int64_t TotalNodes() const;
  int64_t TotalEdges() const;

  NodeTypeId edge_src_type(EdgeTypeId e) const { return edge_src_[e]; }
  NodeTypeId edge_dst_type(EdgeTypeId e) const { return edge_dst_[e]; }

  /// Feature matrix of a node type (empty tensor if unset).
  const Tensor& node_features(NodeTypeId t) const { return features_[t]; }

  /// Feature width of a node type (0 if unset).
  int64_t feature_dim(NodeTypeId t) const { return features_[t].cols(); }

  /// Timestamp of one node (kNoTimestamp when the type is static).
  Timestamp node_time(NodeTypeId t, int64_t node) const;

  /// Neighborhood of `node` under edge type `e`: spans of the CSR arrays.
  /// `*dst_out`/`*time_out` point at `*count_out` parallel entries.
  void Neighbors(EdgeTypeId e, int64_t node, const int64_t** dst_out,
                 const Timestamp** time_out, int64_t* count_out) const;

  /// Degree of a node under an edge type.
  int64_t Degree(EdgeTypeId e, int64_t node) const;

  /// Summary line per type for logging/examples.
  std::string Describe() const;

 private:
  struct Csr {
    std::vector<int64_t> offsets;    // size num_src_nodes + 1
    std::vector<int64_t> neighbors;  // dst node ids
    std::vector<Timestamp> times;    // edge timestamps
  };

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeTypeId> node_index_;
  std::vector<int64_t> num_nodes_;
  std::vector<Tensor> features_;
  std::vector<std::vector<Timestamp>> node_times_;

  std::vector<std::string> edge_names_;
  std::unordered_map<std::string, EdgeTypeId> edge_index_;
  std::vector<NodeTypeId> edge_src_;
  std::vector<NodeTypeId> edge_dst_;
  std::vector<Csr> csr_;
};

}  // namespace relgraph

#endif  // RELGRAPH_GRAPH_HETERO_GRAPH_H_

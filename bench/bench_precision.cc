// Serving-precision accuracy/footprint benchmark.
//
// Trains one churn classifier (binary, AUC) and one order-count regressor
// (MAE) on the e-commerce generator, then serves the held-out test
// entities at each precision mode (fp32 | bf16 | int8), on both the fp32
// feature graph and the int8-quantized feature graph. For every
// configuration it records the task metric, its delta vs the fp32/fp32
// baseline, serving throughput, and the snapshot's bytes-per-node — the
// numbers quoted in docs/performance.md ("Low-precision kernels").
//
// fp32 rows double as a regression guard: their deltas are exactly 0 by
// the byte-equality contract.
//
// Usage: bench_precision [serve.json [gemm.json]]
//        (defaults BENCH_serve.json, BENCH_gemm.json; records are spliced
//        into both files so accuracy deltas ride with the perf numbers)

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/timer.h"
#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "serve/inference_engine.h"
#include "train/metrics.h"
#include "train/trainer.h"

using namespace relgraph;
using namespace relgraph::bench;

namespace {

GnnConfig ModelConfig() {
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 2;
  return gnn;
}

SamplerOptions SamplerConfig() {
  SamplerOptions sopts;
  sopts.fanouts = {8, 8};
  sopts.policy = SamplePolicy::kMostRecent;
  return sopts;
}

struct TaskSetup {
  const char* name;      // churn | spend
  const char* query;
  const char* metric;    // auc | mae
};

struct EvalBatch {
  std::vector<int64_t> ids;
  std::vector<double> labels;
  Timestamp cutoff = 0;
};

/// Test examples sharing the split's final cutoff (the engine scores one
/// point in time, so evaluation sticks to the matching examples).
EvalBatch TestBatch(const TrainingTable& table, const Split& split) {
  EvalBatch out;
  for (int64_t row : split.test) {
    out.cutoff = std::max(out.cutoff, table.cutoffs[row]);
  }
  for (int64_t row : split.test) {
    if (table.cutoffs[row] != out.cutoff) continue;
    out.ids.push_back(table.entity_rows[row]);
    out.labels.push_back(table.labels[row]);
  }
  return out;
}

void RunTask(const TaskSetup& task, const Database& db,
             std::vector<BenchRecord>* records) {
  auto rq = AnalyzeQuery(ParseQuery(task.query).value(), db).value();
  auto cutoffs = MakeCutoffs(rq, db).value();
  auto table = BuildTrainingTable(rq, db, cutoffs).value();
  auto split = MakeSplit(rq, table, cutoffs).value();
  const EvalBatch eval = TestBatch(table, split);

  auto dbg = BuildDbGraph(db).value();
  GraphBuilderOptions qopts;
  qopts.quantize_features = true;
  auto qdbg = BuildDbGraph(db, qopts).value();
  const NodeTypeId entity =
      dbg.graph.FindNodeType(table.entity_table).value();

  TrainerConfig tc;
  tc.epochs = 6;
  tc.seed = 3;
  GnnNodePredictor trainer(&dbg.graph, entity, table.kind,
                           table.num_classes, ModelConfig(), SamplerConfig(),
                           tc);
  if (!trainer.Fit(table, split).ok()) {
    std::fprintf(stderr, "%s: training failed\n", task.name);
    return;
  }
  const std::string ckpt = "/tmp/bench_precision." +
                           std::to_string(getpid()) + ".ckpt";
  if (!trainer.SaveWeights(ckpt).ok()) return;

  double fp32_metric = 0.0;
  for (const bool quantized_graph : {false, true}) {
    const HeteroGraph* graph = quantized_graph ? &qdbg.graph : &dbg.graph;
    for (Precision p :
         {Precision::kFp32, Precision::kBf16, Precision::kInt8}) {
      ServeOptions serve;
      serve.precision = p;
      InferenceEngine engine(graph, entity, table.kind, table.num_classes,
                             ModelConfig(), SamplerConfig(), eval.cutoff,
                             serve);
      if (!engine.LoadCheckpoint(ckpt).ok()) continue;
      Timer t;
      auto scores = engine.Score(eval.ids);
      const double ms = t.Millis();
      if (!scores.ok()) continue;
      const double metric =
          std::string(task.metric) == "auc"
              ? RocAuc(scores.value(), eval.labels)
              : MeanAbsoluteError(scores.value(), eval.labels);
      if (!quantized_graph && p == Precision::kFp32) fp32_metric = metric;

      BenchRecord rec;
      rec.name = StrFormat("precision_%s_%s%s", task.name, PrecisionName(p),
                           quantized_graph ? "_qfeat" : "");
      rec.wall_ms = ms;
      rec.rate = static_cast<double>(eval.ids.size()) / (ms / 1e3);
      rec.threads = 1;
      rec.extra.emplace_back(task.metric, metric);
      rec.extra.emplace_back(std::string(task.metric) + "_delta_vs_fp32",
                             metric - fp32_metric);
      rec.extra.emplace_back("bytes_per_node",
                             engine.HealthStatus().bytes_per_node);
      records->push_back(rec);
      std::printf("%-36s %s %.4f  delta %+.4f  %8.1f ent/s  %7.1f B/node\n",
                  rec.name.c_str(), task.metric, metric,
                  metric - fp32_metric, rec.rate,
                  engine.HealthStatus().bytes_per_node);
    }
  }
  std::remove(ckpt.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string serve_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string gemm_path = argc > 2 ? argv[2] : "BENCH_gemm.json";

  ECommerceConfig cfg;
  cfg.num_users = 300;
  cfg.num_products = 60;
  cfg.num_categories = 6;
  cfg.horizon_days = 180;
  Database db = MakeECommerceDb(cfg);

  const std::vector<TaskSetup> tasks = {
      {"churn",
       "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users",
       "auc"},
      {"orders",
       "PREDICT COUNT(orders) OVER NEXT 28 DAYS FOR EACH users",
       "mae"},
  };

  std::printf("=== serving precision: accuracy vs footprint ===\n");
  std::vector<BenchRecord> records;
  for (const TaskSetup& task : tasks) RunTask(task, db, &records);
  if (records.empty()) return 1;
  const bool ok_serve = AppendBenchJson(serve_path, "serve", records);
  const bool ok_gemm = AppendBenchJson(gemm_path, "gemm_kernels", records);
  return ok_serve && ok_gemm ? 0 : 1;
}

#ifndef RELGRAPH_DB2GRAPH_FEATURE_ENCODER_H_
#define RELGRAPH_DB2GRAPH_FEATURE_ENCODER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "relational/table.h"
#include "tensor/tensor.h"

namespace relgraph {

/// Controls how table columns are turned into dense features.
struct EncodeOptions {
  /// Categorical (STRING) columns with at most this many distinct values
  /// are one-hot encoded; larger vocabularies are FNV-hashed into
  /// `hash_buckets` indicator buckets.
  int64_t max_onehot = 16;
  int64_t hash_buckets = 16;

  /// Adds a 0/1 "is null" indicator for every nullable column.
  bool null_indicators = true;

  /// Columns to skip entirely (PKs/FKs/time columns are always skipped by
  /// EncodeTableFeatures; this adds more).
  std::vector<std::string> skip_columns;
};

/// The dense encoding of one table: row-aligned features plus, for each
/// output dimension, a human-readable name ("age:z", "country=uk",
/// "country:null", ...).
struct EncodedTable {
  Tensor features;  // num_rows × dim
  std::vector<std::string> feature_names;
};

/// Frozen per-column encoding recipe: everything FitEncoderPlan learned
/// from the data (z-score statistics, one-hot vocabulary, hash width, null
/// flag) so that later rows — e.g. streamed appends — can be encoded
/// *without* refitting. Refitting on a grown table would silently shift
/// means and vocabulary slots and change every previously-encoded feature;
/// freezing the plan is what makes incremental DB→graph maintenance
/// bit-identical to a batch rebuild that uses the same plan.
struct ColumnEncoderPlan {
  enum Kind { kNumeric, kBool, kOneHot, kHashed };

  int64_t column = 0;  ///< column index within the table
  Kind kind = kNumeric;
  // Numeric stats (z-score).
  double mean = 0.0;
  double stddev = 1.0;
  // One-hot vocabulary (value -> slot, slots in sorted value order).
  std::map<std::string, int64_t> vocab;
  int64_t width = 0;
  bool add_null_flag = false;
};

/// Frozen encoding recipe for a whole table.
struct EncoderPlan {
  std::vector<ColumnEncoderPlan> columns;
  std::vector<std::string> feature_names;

  /// Sum of column widths (0 for a featureless table).
  int64_t dim = 0;

  /// Actual output width: featureless tables emit one constant column.
  int64_t output_dim() const { return dim == 0 ? 1 : dim; }
};

/// Fits an encoding plan on the table's current rows. PK, FK and
/// event-time columns are excluded — identity and topology belong to the
/// graph, not the feature vector (using raw keys as features is a classic
/// relational-ML leak).
///
/// Per column type:
///   INT64/FLOAT64/TIMESTAMP -> z-scored numeric (nulls imputed to mean,
///                              flagged by a null indicator);
///   BOOL                    -> {0,1} (+ null indicator);
///   STRING                  -> one-hot over the observed vocabulary, or
///                              hashed buckets when the vocabulary is large.
Result<EncoderPlan> FitEncoderPlan(const Table& table,
                                   const EncodeOptions& options = {});

/// Encodes rows [begin, end) of `table` under a frozen plan into an
/// (end - begin) × plan.output_dim() tensor. Streamed values outside a
/// frozen one-hot vocabulary encode as all-zero (plus the null flag if the
/// plan has one); numeric nulls impute to the frozen mean.
Result<Tensor> EncodeRowsWithPlan(const Table& table, const EncoderPlan& plan,
                                  int64_t begin, int64_t end);

/// Fit + encode of the whole table in one shot (bit-identical to
/// FitEncoderPlan followed by EncodeRowsWithPlan over all rows).
Result<EncodedTable> EncodeTableFeatures(const Table& table,
                                         const EncodeOptions& options = {});

/// Appends `block` (row-aligned extra features, e.g. a precomputed
/// aggregate matrix for the hybrid GNN+tabular input path) as additional
/// columns of `dst`. Row counts must match; `block_names.size()` must
/// equal block.cols().
Status AppendFeatureBlock(EncodedTable* dst, const Tensor& block,
                          const std::vector<std::string>& block_names);

}  // namespace relgraph

#endif  // RELGRAPH_DB2GRAPH_FEATURE_ENCODER_H_

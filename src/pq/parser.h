#ifndef RELGRAPH_PQ_PARSER_H_
#define RELGRAPH_PQ_PARSER_H_

#include <string>

#include "core/status.h"
#include "pq/ast.h"

namespace relgraph {

/// Parses the declarative predictive-query language:
///
///   PREDICT <AGG>(<table>[.<column>]) [<op> <number>]
///   OVER NEXT <n> {DAYS|HOURS|WEEKS}
///   FOR EACH <entity_table> [WHERE <col> <op> <literal> [AND ...]]
///   [AS {CLASSIFICATION | REGRESSION | RANKING OF <table>}]
///   [USING <model> [WITH key=value, ...]]
///   [SPLIT AT <n> DAYS, <n> DAYS]
///   [EVERY <n> DAYS]
///
/// Keywords are case-insensitive. Returns ParseError with a byte offset on
/// malformed input.
Result<ParsedQuery> ParseQuery(std::string_view text);

}  // namespace relgraph

#endif  // RELGRAPH_PQ_PARSER_H_

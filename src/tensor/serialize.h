#ifndef RELGRAPH_TENSOR_SERIALIZE_H_
#define RELGRAPH_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace relgraph {

/// Writes one tensor in the RelGraph binary format (shape header +
/// row-major float32 payload, little-endian).
Status WriteTensor(std::ostream& out, const Tensor& tensor);

/// Reads one tensor previously written with WriteTensor.
Result<Tensor> ReadTensor(std::istream& in);

/// Writes a parameter bundle (ordered tensors + named-free scalars) to a
/// stream in the single-file bundle format.
Status WriteTensorBundle(std::ostream& out,
                         const std::vector<Tensor>& tensors,
                         const std::vector<double>& scalars = {});

/// Saves a parameter bundle (ordered tensors + named-free scalars) to a
/// single file, atomically (write temp + rename): a crash mid-save never
/// leaves a truncated bundle behind. Used for trained-model checkpoints:
/// the loader must rebuild the same architecture and restore in the same
/// order.
Status SaveTensorBundle(const std::string& path,
                        const std::vector<Tensor>& tensors,
                        const std::vector<double>& scalars = {});

/// Bundle loaded back from disk.
struct TensorBundle {
  std::vector<Tensor> tensors;
  std::vector<double> scalars;
};

/// Loads a bundle written by SaveTensorBundle (validates magic/version).
Result<TensorBundle> LoadTensorBundle(const std::string& path);

}  // namespace relgraph

#endif  // RELGRAPH_TENSOR_SERIALIZE_H_

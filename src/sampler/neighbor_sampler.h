#ifndef RELGRAPH_SAMPLER_NEIGHBOR_SAMPLER_H_
#define RELGRAPH_SAMPLER_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "core/rng.h"
#include "sampler/subgraph.h"

namespace relgraph {

/// How neighbors are chosen when the (time-valid) neighborhood exceeds the
/// fanout.
enum class SamplePolicy {
  kUniform,     ///< uniform without replacement
  kMostRecent,  ///< keep the neighbors with the latest pre-cutoff edge time
};

/// Configuration of the layered temporal neighbor sampler.
struct SamplerOptions {
  /// Neighbors sampled per node per edge type, one entry per GNN layer
  /// (outermost first). Its length defines the sampling depth.
  std::vector<int64_t> fanouts = {10, 10};

  /// When true (the default and the correct setting), only edges with
  /// timestamp strictly before the seed's cutoff are traversed; static
  /// edges always pass. Setting this false reproduces the "temporal
  /// leakage" failure mode benchmarked in Fig. 5.
  bool temporal = true;

  SamplePolicy policy = SamplePolicy::kUniform;
};

/// Layer-wise temporal neighbor sampler over a HeteroGraph.
///
/// For each seed (node, cutoff) it expands `fanouts.size()` hops; at each
/// hop every frontier node samples up to `fanouts[k]` neighbors per edge
/// type among edges dated strictly before the seed's cutoff. The result is
/// a `Subgraph` ready for bottom-up heterogeneous message passing.
class NeighborSampler {
 public:
  NeighborSampler(const HeteroGraph* graph, SamplerOptions options);

  /// Samples a subgraph for seeds of the given type; `cutoffs` must be
  /// aligned with `seeds` (use the database's max time + 1 for "now").
  Subgraph Sample(NodeTypeId seed_type, const std::vector<int64_t>& seeds,
                  const std::vector<Timestamp>& cutoffs, Rng* rng) const;

  const SamplerOptions& options() const { return options_; }
  int64_t num_layers() const {
    return static_cast<int64_t>(options_.fanouts.size());
  }

  /// Toggles temporal filtering after construction (used by the leakage
  /// ablation to evaluate a leakily-trained model under honest sampling).
  void set_temporal(bool temporal) { options_.temporal = temporal; }

 private:
  const HeteroGraph* graph_;
  SamplerOptions options_;
};

/// Splits [0, n) into shuffled batches of at most `batch_size` indices.
std::vector<std::vector<int64_t>> MakeBatches(int64_t n, int64_t batch_size,
                                              Rng* rng);

}  // namespace relgraph

#endif  // RELGRAPH_SAMPLER_NEIGHBOR_SAMPLER_H_

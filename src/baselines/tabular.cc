#include "baselines/tabular.h"

#include <cmath>

#include "baselines/gbdt.h"
#include "core/logging.h"
#include "tensor/nn.h"
#include "tensor/optim.h"
#include "train/metrics.h"

namespace relgraph {

namespace {

/// Column-wise standardization fit on the training rows.
void FitStandardizer(const Tensor& x, const std::vector<int64_t>& rows,
                     std::vector<float>* mean, std::vector<float>* std) {
  const int64_t d = x.cols();
  mean->assign(static_cast<size_t>(d), 0.0f);
  std->assign(static_cast<size_t>(d), 1.0f);
  if (rows.empty()) return;
  for (int64_t c = 0; c < d; ++c) {
    double sum = 0, sum_sq = 0;
    for (int64_t r : rows) {
      sum += x.at(r, c);
      sum_sq += static_cast<double>(x.at(r, c)) * x.at(r, c);
    }
    const double m = sum / static_cast<double>(rows.size());
    const double var = sum_sq / static_cast<double>(rows.size()) - m * m;
    (*mean)[static_cast<size_t>(c)] = static_cast<float>(m);
    (*std)[static_cast<size_t>(c)] =
        var > 1e-10 ? static_cast<float>(std::sqrt(var)) : 1.0f;
  }
}

Tensor ApplyStandardizer(const Tensor& x, const std::vector<int64_t>& rows,
                         const std::vector<float>& mean,
                         const std::vector<float>& std) {
  Tensor out(static_cast<int64_t>(rows.size()), x.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      out.at(static_cast<int64_t>(i), c) =
          (x.at(rows[i], c) - mean[static_cast<size_t>(c)]) /
          std[static_cast<size_t>(c)];
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------- ConstantBaseline

Status ConstantBaseline::Fit(const Tensor& /*x*/,
                             const std::vector<double>& y, TaskKind kind,
                             const std::vector<int64_t>& train_idx,
                             const std::vector<int64_t>& /*val_idx*/,
                             int64_t num_classes) {
  if (train_idx.empty()) {
    return Status::InvalidArgument("constant: empty training split");
  }
  if (kind == TaskKind::kMulticlassClassification) {
    std::vector<int64_t> counts(static_cast<size_t>(num_classes), 0);
    for (int64_t i : train_idx) {
      const int64_t cls = static_cast<int64_t>(y[static_cast<size_t>(i)]);
      if (cls >= 0 && cls < num_classes) ++counts[static_cast<size_t>(cls)];
    }
    int64_t best = 0;
    for (int64_t c = 1; c < num_classes; ++c) {
      if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    constant_ = static_cast<double>(best);
    return Status::OK();
  }
  double mean = 0;
  for (int64_t i : train_idx) mean += y[static_cast<size_t>(i)];
  mean /= static_cast<double>(train_idx.size());
  constant_ = mean;
  return Status::OK();
}

std::vector<double> ConstantBaseline::Predict(
    const Tensor& /*x*/, const std::vector<int64_t>& rows) const {
  return std::vector<double>(rows.size(), constant_);
}

// ------------------------------------------------------------ LinearModel

LinearModel::LinearModel(uint64_t seed, int64_t epochs, float lr, float l2)
    : seed_(seed), epochs_(epochs), lr_(lr), l2_(l2) {}

Status LinearModel::Fit(const Tensor& x, const std::vector<double>& y,
                        TaskKind kind, const std::vector<int64_t>& train_idx,
                        const std::vector<int64_t>& /*val_idx*/,
                        int64_t /*num_classes*/) {
  if (train_idx.empty()) {
    return Status::InvalidArgument("linear: empty training split");
  }
  if (kind == TaskKind::kMulticlassClassification ||
      kind == TaskKind::kRanking) {
    return Status::InvalidArgument("linear supports binary/regression only");
  }
  kind_ = kind;
  FitStandardizer(x, train_idx, &feat_mean_, &feat_std_);
  Tensor xt = ApplyStandardizer(x, train_idx, feat_mean_, feat_std_);
  const int64_t n = xt.rows();

  label_mean_ = 0.0;
  label_std_ = 1.0;
  Tensor targets(n, 1);
  if (kind_ == TaskKind::kRegression) {
    double sum = 0, sum_sq = 0;
    for (int64_t i : train_idx) {
      sum += y[static_cast<size_t>(i)];
      sum_sq += y[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    }
    label_mean_ = sum / static_cast<double>(train_idx.size());
    const double var =
        sum_sq / static_cast<double>(train_idx.size()) -
        label_mean_ * label_mean_;
    label_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  for (size_t i = 0; i < train_idx.size(); ++i) {
    const double raw = y[static_cast<size_t>(train_idx[i])];
    targets.at(static_cast<int64_t>(i), 0) = static_cast<float>(
        kind_ == TaskKind::kRegression ? (raw - label_mean_) / label_std_
                                       : raw);
  }

  Rng rng(seed_);
  Linear lin(x.cols(), 1, &rng);
  Adam opt(lin.Parameters(), lr_, 0.9f, 0.999f, 1e-8f, l2_);
  VarPtr xv = ag::Constant(xt);
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    opt.ZeroGrad();
    VarPtr out = lin.Forward(xv);
    VarPtr loss = kind_ == TaskKind::kBinaryClassification
                      ? ag::BinaryCrossEntropyWithLogits(out, targets)
                      : ag::MseLoss(out, targets);
    Backward(loss);
    opt.Step();
  }
  weights_ = lin.weight()->value();
  bias_ = lin.bias()->value().at(0, 0);
  return Status::OK();
}

std::vector<double> LinearModel::Predict(
    const Tensor& x, const std::vector<int64_t>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (int64_t r : rows) {
    double z = bias_;
    for (int64_t c = 0; c < x.cols(); ++c) {
      const double v = (x.at(r, c) - feat_mean_[static_cast<size_t>(c)]) /
                       feat_std_[static_cast<size_t>(c)];
      z += v * weights_.at(c, 0);
    }
    out.push_back(kind_ == TaskKind::kBinaryClassification
                      ? 1.0 / (1.0 + std::exp(-z))
                      : z * label_std_ + label_mean_);
  }
  return out;
}

// -------------------------------------------------------- TabularMlpModel

struct TabularMlpModel::Impl {
  std::unique_ptr<Mlp> mlp;
  Rng rng;
  explicit Impl(uint64_t seed) : rng(seed) {}
};

TabularMlpModel::TabularMlpModel(int64_t hidden, uint64_t seed,
                                 int64_t epochs, float lr, float dropout)
    : hidden_(hidden), seed_(seed), epochs_(epochs), lr_(lr),
      dropout_(dropout) {}

Status TabularMlpModel::Fit(const Tensor& x, const std::vector<double>& y,
                            TaskKind kind,
                            const std::vector<int64_t>& train_idx,
                            const std::vector<int64_t>& val_idx,
                            int64_t num_classes) {
  if (train_idx.empty()) {
    return Status::InvalidArgument("mlp: empty training split");
  }
  if (kind == TaskKind::kRanking) {
    return Status::InvalidArgument("mlp does not support ranking");
  }
  kind_ = kind;
  num_classes_ = num_classes;
  FitStandardizer(x, train_idx, &feat_mean_, &feat_std_);
  Tensor xt = ApplyStandardizer(x, train_idx, feat_mean_, feat_std_);

  label_mean_ = 0.0;
  label_std_ = 1.0;
  if (kind_ == TaskKind::kRegression) {
    double sum = 0, sum_sq = 0;
    for (int64_t i : train_idx) {
      sum += y[static_cast<size_t>(i)];
      sum_sq += y[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    }
    label_mean_ = sum / static_cast<double>(train_idx.size());
    const double var = sum_sq / static_cast<double>(train_idx.size()) -
                       label_mean_ * label_mean_;
    label_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  Tensor targets(xt.rows(), 1);
  std::vector<int64_t> class_targets;
  for (size_t i = 0; i < train_idx.size(); ++i) {
    const double raw = y[static_cast<size_t>(train_idx[i])];
    targets.at(static_cast<int64_t>(i), 0) = static_cast<float>(
        kind_ == TaskKind::kRegression ? (raw - label_mean_) / label_std_
                                       : raw);
    if (kind_ == TaskKind::kMulticlassClassification) {
      class_targets.push_back(static_cast<int64_t>(raw));
    }
  }

  const int64_t out_dim =
      kind_ == TaskKind::kMulticlassClassification ? num_classes_ : 1;
  impl_ = std::make_shared<Impl>(seed_);
  impl_->mlp = std::make_unique<Mlp>(
      std::vector<int64_t>{x.cols(), hidden_, hidden_ / 2, out_dim},
      &impl_->rng, dropout_);
  Adam opt(impl_->mlp->Parameters(), lr_, 0.9f, 0.999f, 1e-8f, 1e-5f);

  // Early stopping on validation loss.
  double best_val = 1e30;
  std::vector<Tensor> best_params;
  for (const auto& p : impl_->mlp->Parameters()) {
    best_params.push_back(p->value());
  }
  int64_t stale = 0;
  VarPtr xv = ag::Constant(xt);
  for (int64_t epoch = 0; epoch < epochs_; ++epoch) {
    opt.ZeroGrad();
    VarPtr out = impl_->mlp->Forward(xv, &impl_->rng, /*training=*/true);
    VarPtr loss;
    switch (kind_) {
      case TaskKind::kBinaryClassification:
        loss = ag::BinaryCrossEntropyWithLogits(out, targets);
        break;
      case TaskKind::kMulticlassClassification:
        loss = ag::SoftmaxCrossEntropy(out, class_targets);
        break;
      default:
        loss = ag::MseLoss(out, targets);
        break;
    }
    Backward(loss);
    opt.ClipGradNorm(5.0f);
    opt.Step();
    if (!val_idx.empty()) {
      auto preds = Predict(x, val_idx);
      double val_loss = 0.0;
      for (size_t i = 0; i < val_idx.size(); ++i) {
        const double t = y[static_cast<size_t>(val_idx[i])];
        if (kind_ == TaskKind::kBinaryClassification) {
          const double p =
              std::min(1.0 - 1e-12, std::max(1e-12, preds[i]));
          val_loss -= t > 0.5 ? std::log(p) : std::log(1.0 - p);
        } else if (kind_ == TaskKind::kMulticlassClassification) {
          // 0/1 error as the early-stopping criterion.
          val_loss += preds[i] == t ? 0.0 : 1.0;
        } else {
          val_loss += (preds[i] - t) * (preds[i] - t);
        }
      }
      if (val_loss < best_val - 1e-9) {
        best_val = val_loss;
        auto params = impl_->mlp->Parameters();
        for (size_t i = 0; i < params.size(); ++i) {
          best_params[i] = params[i]->value();
        }
        stale = 0;
      } else if (++stale >= 8) {
        break;
      }
    }
  }
  if (!val_idx.empty()) {
    auto params = impl_->mlp->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->mutable_value() = best_params[i];
    }
  }
  return Status::OK();
}

std::vector<double> TabularMlpModel::Predict(
    const Tensor& x, const std::vector<int64_t>& rows) const {
  RELGRAPH_CHECK(impl_ != nullptr) << "Predict before Fit";
  Tensor xt = ApplyStandardizer(x, rows, feat_mean_, feat_std_);
  VarPtr out = impl_->mlp->Forward(ag::Constant(std::move(xt)));
  std::vector<double> preds;
  preds.reserve(rows.size());
  for (int64_t r = 0; r < out->rows(); ++r) {
    if (kind_ == TaskKind::kMulticlassClassification) {
      int64_t arg = 0;
      for (int64_t c = 1; c < out->cols(); ++c) {
        if (out->value().at(r, c) > out->value().at(r, arg)) arg = c;
      }
      preds.push_back(static_cast<double>(arg));
      continue;
    }
    const double z = out->value().at(r, 0);
    preds.push_back(kind_ == TaskKind::kBinaryClassification
                        ? 1.0 / (1.0 + std::exp(-z))
                        : z * label_std_ + label_mean_);
  }
  return preds;
}

Result<std::unique_ptr<TabularModel>> MakeTabularModel(
    const std::string& name, uint64_t seed) {
  if (name == "constant") return std::unique_ptr<TabularModel>(new ConstantBaseline());
  if (name == "linear") {
    return std::unique_ptr<TabularModel>(new LinearModel(seed));
  }
  if (name == "mlp") {
    return std::unique_ptr<TabularModel>(new TabularMlpModel(64, seed));
  }
  if (name == "gbdt") {
    return std::unique_ptr<TabularModel>(new GbdtModel());
  }
  return Status::NotFound("unknown tabular model: " + name);
}

}  // namespace relgraph

#include "relational/snapshot.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "core/atomic_io.h"
#include "core/string_util.h"

namespace relgraph {

namespace {

constexpr uint32_t kMagic = 0x52444231;  // "RDB1"

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<std::string> ReadString(std::istream& in) {
  int64_t size = 0;
  if (!ReadPod(in, &size) || size < 0 || size > (1 << 26)) {
    return Status::ParseError("corrupt string length in snapshot");
  }
  std::string s(static_cast<size_t>(size), '\0');
  in.read(s.data(), size);
  if (!in) return Status::ParseError("truncated string in snapshot");
  return s;
}

void WriteValue(std::ostream& out, const Value& v, DataType type) {
  const uint8_t null_flag = v.is_null() ? 1 : 0;
  WritePod(out, null_flag);
  if (null_flag) return;
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      WritePod(out, v.as_int());
      break;
    case DataType::kFloat64:
      WritePod(out, v.as_double());
      break;
    case DataType::kBool:
      WritePod(out, static_cast<uint8_t>(v.as_bool() ? 1 : 0));
      break;
    case DataType::kString:
      WriteString(out, v.as_string());
      break;
  }
}

Result<Value> ReadValue(std::istream& in, DataType type) {
  uint8_t null_flag = 0;
  if (!ReadPod(in, &null_flag)) {
    return Status::ParseError("truncated cell in snapshot");
  }
  if (null_flag) return Value::Null();
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = 0;
      if (!ReadPod(in, &v)) return Status::ParseError("truncated int cell");
      return Value(v);
    }
    case DataType::kFloat64: {
      double v = 0;
      if (!ReadPod(in, &v)) {
        return Status::ParseError("truncated float cell");
      }
      return Value(v);
    }
    case DataType::kBool: {
      uint8_t v = 0;
      if (!ReadPod(in, &v)) return Status::ParseError("truncated bool cell");
      return Value(v != 0);
    }
    case DataType::kString: {
      RELGRAPH_ASSIGN_OR_RETURN(std::string s, ReadString(in));
      return Value(std::move(s));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status SaveDatabaseSnapshot(const Database& db, const std::string& path) {
  // Buffer the full snapshot, then write atomically so a crash mid-save
  // can never leave a truncated snapshot at `path`.
  std::ostringstream out(std::ios::binary);
  WritePod(out, kMagic);
  WriteString(out, db.name());
  WritePod(out, static_cast<int64_t>(db.num_tables()));
  for (const auto& table : db.tables()) {
    const TableSchema& schema = table->schema();
    WriteString(out, schema.name());
    WritePod(out, static_cast<int64_t>(schema.columns().size()));
    for (const auto& col : schema.columns()) {
      WriteString(out, col.name);
      WritePod(out, static_cast<int32_t>(col.type));
      WritePod(out, static_cast<uint8_t>(col.nullable ? 1 : 0));
    }
    WriteString(out, schema.primary_key().value_or(""));
    WriteString(out, schema.time_column().value_or(""));
    WritePod(out, static_cast<int64_t>(schema.foreign_keys().size()));
    for (const auto& fk : schema.foreign_keys()) {
      WriteString(out, fk.column);
      WriteString(out, fk.referenced_table);
    }
    WritePod(out, table->num_rows());
    for (int64_t r = 0; r < table->num_rows(); ++r) {
      for (int64_t c = 0; c < table->num_columns(); ++c) {
        WriteValue(out, table->column(c).GetValue(r),
                   table->column(c).type());
      }
    }
  }
  if (!out) return Status::IoError("snapshot write failed: " + path);
  return AtomicWriteFile(path, out.str());
}

Result<Database> LoadDatabaseSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::ParseError("not a RelGraph database snapshot: " + path);
  }
  RELGRAPH_ASSIGN_OR_RETURN(std::string name, ReadString(in));
  Database db(name);
  int64_t num_tables = 0;
  if (!ReadPod(in, &num_tables) || num_tables < 0 || num_tables > 4096) {
    return Status::ParseError("corrupt table count");
  }
  for (int64_t t = 0; t < num_tables; ++t) {
    RELGRAPH_ASSIGN_OR_RETURN(std::string table_name, ReadString(in));
    TableSchema schema(table_name);
    int64_t num_cols = 0;
    if (!ReadPod(in, &num_cols) || num_cols < 0 || num_cols > 4096) {
      return Status::ParseError("corrupt column count");
    }
    for (int64_t c = 0; c < num_cols; ++c) {
      RELGRAPH_ASSIGN_OR_RETURN(std::string col_name, ReadString(in));
      int32_t type = 0;
      uint8_t nullable = 0;
      if (!ReadPod(in, &type) || !ReadPod(in, &nullable) || type < 0 ||
          type > static_cast<int32_t>(DataType::kTimestamp)) {
        return Status::ParseError("corrupt column spec");
      }
      schema.AddColumn(col_name, static_cast<DataType>(type), nullable != 0);
    }
    RELGRAPH_ASSIGN_OR_RETURN(std::string pk, ReadString(in));
    if (!pk.empty()) schema.SetPrimaryKey(pk);
    RELGRAPH_ASSIGN_OR_RETURN(std::string time_col, ReadString(in));
    if (!time_col.empty()) schema.SetTimeColumn(time_col);
    int64_t num_fks = 0;
    if (!ReadPod(in, &num_fks) || num_fks < 0 || num_fks > 4096) {
      return Status::ParseError("corrupt FK count");
    }
    for (int64_t f = 0; f < num_fks; ++f) {
      RELGRAPH_ASSIGN_OR_RETURN(std::string fk_col, ReadString(in));
      RELGRAPH_ASSIGN_OR_RETURN(std::string fk_table, ReadString(in));
      schema.AddForeignKey(fk_col, fk_table);
    }
    RELGRAPH_ASSIGN_OR_RETURN(Table * table, db.AddTable(schema));
    int64_t num_rows = 0;
    if (!ReadPod(in, &num_rows) || num_rows < 0) {
      return Status::ParseError("corrupt row count");
    }
    std::vector<Value> row(static_cast<size_t>(num_cols));
    for (int64_t r = 0; r < num_rows; ++r) {
      for (int64_t c = 0; c < num_cols; ++c) {
        RELGRAPH_ASSIGN_OR_RETURN(
            Value v, ReadValue(in, table->schema().columns()[c].type));
        row[static_cast<size_t>(c)] = std::move(v);
      }
      RELGRAPH_RETURN_IF_ERROR(table->AppendRow(row));
    }
  }
  return db;
}

}  // namespace relgraph

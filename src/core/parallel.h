#ifndef RELGRAPH_CORE_PARALLEL_H_
#define RELGRAPH_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

namespace relgraph {

/// Deterministic shared thread-pool runtime.
///
/// All parallel hot paths in RelGraph (GEMM kernels, neighbor sampling,
/// sampler prefetch) run on one lazily-started global pool. The pool is
/// sized by the `RELGRAPH_NUM_THREADS` environment variable (default:
/// `std::thread::hardware_concurrency()`, value `1` = fully serial
/// fallback with no worker threads).
///
/// Determinism contract: work is split into chunks whose boundaries depend
/// only on the problem size and the grain — never on the thread count —
/// and every combining step runs in chunk order on the calling thread.
/// Together with kernels that keep per-output accumulation order fixed,
/// this makes every result bit-identical at any parallelism level.
class ThreadPool {
 public:
  /// The shared global pool, started on first use.
  static ThreadPool& Global();

  /// Total threads applying work in a parallel region (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Runs fn(chunk_idx) for every chunk in [0, num_chunks), distributing
  /// chunks over the workers; the calling thread participates. Blocks
  /// until all chunks completed. Calls from inside a pool worker run the
  /// chunks inline (serially) instead of deadlocking on the pool.
  void ParallelChunks(int64_t num_chunks,
                      const std::function<void(int64_t)>& fn);

  /// Enqueues a standalone task (used by the trainer's sampler prefetch).
  /// With no workers (serial mode) or when called from a worker, the task
  /// runs inline before returning.
  void Submit(std::function<void()> fn);

  /// True when the current thread is one of this pool's workers.
  static bool InWorker();

  /// Test-only: stops the pool and restarts it with `n` threads (n >= 1),
  /// overriding RELGRAPH_NUM_THREADS. Must not be called while parallel
  /// work is in flight. Lets one process compare thread counts directly.
  static void SetNumThreadsForTesting(int n);

  ~ThreadPool();

 private:
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  int num_threads_ = 1;
};

/// Thread count the global pool was (or will be) started with.
int NumThreads();

/// Splits [begin, end) into chunks of `grain` iterations (the last chunk
/// may be short) and runs body(chunk_begin, chunk_end) for each chunk on
/// the global pool. Chunks must be independent: each writes disjoint
/// outputs, so results are identical at any thread count. Runs inline when
/// the range fits a single chunk or the pool is serial.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// Deterministic chunked reduction. The range is split into chunks of
/// `grain` exactly as ParallelFor does — boundaries depend only on
/// (end - begin, grain) — each chunk computes a partial with `chunk_fn`,
/// and the partials are folded left-to-right in chunk order with
/// `combine(acc, partial)` on the calling thread. The result is therefore
/// bit-identical at any thread count (though it may differ from a single
/// unchunked fold when floating-point rounding is involved; callers pick
/// the grain as part of their numeric contract).
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 const ChunkFn& chunk_fn, const CombineFn& combine) {
  if (end <= begin) return init;
  if (grain < 1) grain = 1;
  const int64_t n = end - begin;
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) return combine(init, chunk_fn(begin, end));
  std::vector<T> partials(static_cast<size_t>(num_chunks));
  ThreadPool::Global().ParallelChunks(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = lo + grain < end ? lo + grain : end;
    partials[static_cast<size_t>(c)] = chunk_fn(lo, hi);
  });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Runs `fn` asynchronously on the global pool and returns its future.
/// In serial mode the call degenerates to immediate inline execution, so
/// callers get identical results (the deterministic RNG streams make the
/// outcome independent of *when* the task actually runs).
template <typename F>
auto Async(F&& fn) -> std::future<decltype(fn())> {
  using R = decltype(fn());
  auto task =
      std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
  std::future<R> fut = task->get_future();
  ThreadPool::Global().Submit([task] { (*task)(); });
  return fut;
}

}  // namespace relgraph

#endif  // RELGRAPH_CORE_PARALLEL_H_

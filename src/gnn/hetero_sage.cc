#include "gnn/hetero_sage.h"

#include <cmath>

#include "core/logging.h"
#include "core/parallel.h"
#include "tensor/init.h"

namespace relgraph {

HeteroSageModel::HeteroSageModel(const HeteroGraph* graph,
                                 const GnnConfig& config, Rng* rng)
    : graph_(graph), config_(config) {
  RELGRAPH_CHECK(graph_ != nullptr);
  RELGRAPH_CHECK(config_.hidden_dim > 0);
  RELGRAPH_CHECK(config_.num_layers >= 0);
  const int32_t num_types = graph_->num_node_types();
  out_edge_types_.resize(static_cast<size_t>(num_types));
  for (EdgeTypeId e = 0; e < graph_->num_edge_types(); ++e) {
    out_edge_types_[static_cast<size_t>(graph_->edge_src_type(e))]
        .push_back(e);
  }
  encoders_.resize(static_cast<size_t>(num_types));
  for (int32_t t = 0; t < num_types; ++t) {
    int64_t in_dim = std::max<int64_t>(graph_->feature_dim(t), 1);
    if (config_.time_encoding) in_dim += 2;
    if (config_.degree_encoding) {
      in_dim += static_cast<int64_t>(
          out_edge_types_[static_cast<size_t>(t)].size());
    }
    encoders_[static_cast<size_t>(t)] =
        std::make_unique<Linear>(in_dim, config_.hidden_dim, rng);
  }
  layers_.resize(static_cast<size_t>(config_.num_layers));
  for (auto& layer : layers_) {
    layer.self.resize(static_cast<size_t>(num_types));
    for (int32_t t = 0; t < num_types; ++t) {
      layer.self[static_cast<size_t>(t)] = std::make_unique<Linear>(
          config_.hidden_dim, config_.hidden_dim, rng);
    }
    layer.message.resize(static_cast<size_t>(graph_->num_edge_types()));
    for (int32_t e = 0; e < graph_->num_edge_types(); ++e) {
      layer.message[static_cast<size_t>(e)] = std::make_unique<Linear>(
          config_.hidden_dim, config_.hidden_dim, rng, /*bias=*/false);
    }
    if (config_.conv == GnnConv::kAttention) {
      layer.att_src.resize(static_cast<size_t>(graph_->num_edge_types()));
      layer.att_dst.resize(static_cast<size_t>(graph_->num_edge_types()));
      for (int32_t e = 0; e < graph_->num_edge_types(); ++e) {
        layer.att_src[static_cast<size_t>(e)] =
            ag::Param(GlorotUniform(config_.hidden_dim, 1, rng));
        layer.att_dst[static_cast<size_t>(e)] =
            ag::Param(GlorotUniform(config_.hidden_dim, 1, rng));
      }
    }
    if (config_.layer_norm) {
      layer.norm = std::make_unique<LayerNorm>(config_.hidden_dim);
    }
  }
}

void HeteroSageModel::RebindGraph(const HeteroGraph* graph) {
  RELGRAPH_CHECK(graph != nullptr);
  RELGRAPH_CHECK(graph->num_node_types() == graph_->num_node_types())
      << "RebindGraph: node-type count mismatch";
  RELGRAPH_CHECK(graph->num_edge_types() == graph_->num_edge_types())
      << "RebindGraph: edge-type count mismatch";
  for (EdgeTypeId e = 0; e < graph->num_edge_types(); ++e) {
    RELGRAPH_CHECK(graph->edge_src_type(e) == graph_->edge_src_type(e) &&
                   graph->edge_dst_type(e) == graph_->edge_dst_type(e))
        << "RebindGraph: edge type " << e << " endpoint mismatch";
  }
  for (int32_t t = 0; t < graph->num_node_types(); ++t) {
    RELGRAPH_CHECK(graph->feature_dim(t) == graph_->feature_dim(t))
        << "RebindGraph: feature width mismatch for node type " << t;
  }
  graph_ = graph;
}

VarPtr HeteroSageModel::Forward(const Subgraph& sg, NodeTypeId seed_type,
                                Rng* rng, bool training) const {
  return ForwardOn(graph_, sg, seed_type, rng, training);
}

VarPtr HeteroSageModel::ForwardOn(const HeteroGraph* graph,
                                  const Subgraph& sg, NodeTypeId seed_type,
                                  Rng* rng, bool training,
                                  Precision precision) const {
  RELGRAPH_CHECK(graph != nullptr);
  RELGRAPH_CHECK(precision == Precision::kFp32 || !training)
      << "low-precision forwards are inference-only";
  RELGRAPH_CHECK(static_cast<int64_t>(sg.blocks.size()) ==
                 config_.num_layers)
      << "subgraph depth " << sg.blocks.size() << " != model layers "
      << config_.num_layers;
  const int32_t num_types = graph->num_node_types();
  const size_t deepest = sg.frontiers.size() - 1;

  // Encode raw features of the deepest frontier.
  std::vector<VarPtr> h(static_cast<size_t>(num_types));
  for (int32_t t = 0; t < num_types; ++t) {
    const auto& nodes = sg.frontiers[deepest].nodes[static_cast<size_t>(t)];
    if (nodes.empty()) continue;
    const auto& cutoffs =
        sg.frontiers[deepest].cutoffs[static_cast<size_t>(t)];
    VarPtr x = ag::Constant(InputFeatures(graph, t, nodes, cutoffs));
    VarPtr enc = ag::Relu(encoders_[static_cast<size_t>(t)]
                              ->ForwardWithPrecision(x, precision));
    if (training && config_.dropout > 0.0f) {
      enc = ag::Dropout(enc, config_.dropout, rng, true);
    }
    h[static_cast<size_t>(t)] = enc;
  }

  // Bottom-up message passing: layer k aggregates frontier k+1 into k.
  for (int64_t k = config_.num_layers - 1; k >= 0; --k) {
    const Layer& layer = layers_[static_cast<size_t>(k)];
    const auto& frontier = sg.frontiers[static_cast<size_t>(k)];
    std::vector<VarPtr> next_h(static_cast<size_t>(num_types));
    // Self term (prefix rows of the deeper representation).
    for (int32_t t = 0; t < num_types; ++t) {
      const int64_t n = static_cast<int64_t>(
          frontier.nodes[static_cast<size_t>(t)].size());
      if (n == 0) continue;
      RELGRAPH_CHECK(h[static_cast<size_t>(t)] != nullptr);
      // The frontier's nodes are the first n rows of the deeper frontier's
      // representation by construction, so the self term is a zero-copy
      // row view rather than a gathered copy.
      VarPtr self = ag::SliceRows(h[static_cast<size_t>(t)], 0, n);
      next_h[static_cast<size_t>(t)] =
          layer.self[static_cast<size_t>(t)]->ForwardWithPrecision(
              self, precision);
    }
    // Message terms per sampled block.
    for (const auto& block : sg.blocks[static_cast<size_t>(k)]) {
      const NodeTypeId tgt_type = graph->edge_src_type(block.edge_type);
      const NodeTypeId src_type = graph->edge_dst_type(block.edge_type);
      RELGRAPH_CHECK(h[static_cast<size_t>(src_type)] != nullptr);
      RELGRAPH_CHECK(next_h[static_cast<size_t>(tgt_type)] != nullptr);
      const int64_t n_tgt = static_cast<int64_t>(
          frontier.nodes[static_cast<size_t>(tgt_type)].size());
      VarPtr msgs = ag::GatherRows(h[static_cast<size_t>(src_type)],
                                   block.source_local);
      VarPtr agg;
      if (config_.conv == GnnConv::kAttention) {
        // GAT-style: score each sampled edge from the (deeper) reps of
        // both endpoints; target reps come from the self-prefix rows.
        VarPtr tgt_rep = ag::GatherRows(h[static_cast<size_t>(tgt_type)],
                                        block.target_local);
        VarPtr score = ag::LeakyRelu(
            ag::Add(ag::MatMul(msgs, layer.att_src[static_cast<size_t>(
                                         block.edge_type)]),
                    ag::MatMul(tgt_rep, layer.att_dst[static_cast<size_t>(
                                            block.edge_type)])),
            0.2f);
        VarPtr weights =
            ag::SegmentSoftmax(score, block.target_local, n_tgt);
        agg = ag::SegmentSum(ag::MulColBroadcast(msgs, weights),
                             block.target_local, n_tgt);
      } else {
        switch (config_.aggregation) {
          case GnnAggregation::kMean:
            agg = ag::SegmentMean(msgs, block.target_local, n_tgt);
            break;
          case GnnAggregation::kSum:
            agg = ag::SegmentSum(msgs, block.target_local, n_tgt);
            break;
          case GnnAggregation::kMax:
            agg = ag::SegmentMax(msgs, block.target_local, n_tgt);
            break;
        }
      }
      VarPtr transformed =
          layer.message[static_cast<size_t>(block.edge_type)]
              ->ForwardWithPrecision(agg, precision);
      next_h[static_cast<size_t>(tgt_type)] =
          ag::Add(next_h[static_cast<size_t>(tgt_type)], transformed);
    }
    // Normalization, non-linearity, dropout.
    for (int32_t t = 0; t < num_types; ++t) {
      if (next_h[static_cast<size_t>(t)] == nullptr) continue;
      VarPtr pre = next_h[static_cast<size_t>(t)];
      if (layer.norm) pre = layer.norm->Forward(pre);
      VarPtr act = ag::Relu(pre);
      if (training && config_.dropout > 0.0f) {
        act = ag::Dropout(act, config_.dropout, rng, true);
      }
      next_h[static_cast<size_t>(t)] = act;
    }
    h = std::move(next_h);
  }
  VarPtr out = h[static_cast<size_t>(seed_type)];
  RELGRAPH_CHECK(out != nullptr) << "no seed nodes of the requested type";
  return out;
}

Tensor HeteroSageModel::InputFeatures(
    const HeteroGraph* graph, NodeTypeId type,
    const std::vector<int64_t>& nodes,
    const std::vector<Timestamp>& cutoffs) const {
  const int64_t n = static_cast<int64_t>(nodes.size());
  const Tensor& table_feats = graph->node_features(type);
  // Quantized storage must be checked before table_feats.empty(): a
  // quantized type's fp32 tensor is deliberately empty, but the type is
  // NOT featureless.
  const bool quantized = graph->features_quantized(type);
  const QuantizedTensor& qfeats = graph->node_qfeatures(type);
  const int64_t base_dim =
      quantized ? qfeats.cols() : (table_feats.empty() ? 1 : table_feats.cols());
  int64_t dim = base_dim;
  if (config_.time_encoding) dim += 2;
  const auto& out_edges = out_edge_types_[static_cast<size_t>(type)];
  if (config_.degree_encoding) {
    dim += static_cast<int64_t>(out_edges.size());
  }
  Tensor out(n, dim);
  // Rows are independent (pure reads of the graph, disjoint writes), so
  // feature assembly parallelizes without affecting results.
  const int64_t grain = std::max<int64_t>(1, 4096 / std::max<int64_t>(1, dim));
  ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    const int64_t node = nodes[static_cast<size_t>(i)];
    const Timestamp cutoff = cutoffs[static_cast<size_t>(i)];
    int64_t col = 0;
    if (quantized) {
      // Dequant is scale * code, one rounding — deterministic regardless
      // of thread schedule or SIMD build.
      for (int64_t c = 0; c < base_dim; ++c) {
        out.at(i, col++) = qfeats.Dequant(node, c);
      }
    } else if (table_feats.empty()) {
      out.at(i, col++) = 1.0f;
    } else {
      for (int64_t c = 0; c < base_dim; ++c) {
        out.at(i, col++) = table_feats.at(node, c);
      }
    }
    if (config_.time_encoding) {
      const Timestamp t = graph->node_time(type, node);
      if (t == kNoTimestamp) {
        out.at(i, col++) = 0.0f;
        out.at(i, col++) = 1.0f;  // is_static
      } else {
        const double days =
            std::max<double>(0.0, static_cast<double>(cutoff - t) /
                                      static_cast<double>(kDay));
        out.at(i, col++) = static_cast<float>(std::log1p(days));
        out.at(i, col++) = 0.0f;
      }
    }
    if (config_.degree_encoding) {
      for (EdgeTypeId e : out_edges) {
        int64_t valid = 0;
        const int32_t num_segs = graph->num_segments(e);
        for (int32_t s = 0; s < num_segs; ++s) {
          const int64_t* dst;
          const Timestamp* times;
          int64_t count;
          graph->SegmentNeighbors(e, s, node, &dst, &times, &count);
          (void)dst;
          for (int64_t k = 0; k < count; ++k) {
            if (times[k] == kNoTimestamp || times[k] < cutoff) ++valid;
          }
        }
        out.at(i, col++) =
            static_cast<float>(std::log1p(static_cast<double>(valid)));
      }
    }
  }
  });
  return out;
}

std::vector<VarPtr> HeteroSageModel::Parameters() const {
  std::vector<VarPtr> ps;
  for (const auto& enc : encoders_) {
    for (const auto& p : enc->Parameters()) ps.push_back(p);
  }
  for (const auto& layer : layers_) {
    for (const auto& lin : layer.self) {
      for (const auto& p : lin->Parameters()) ps.push_back(p);
    }
    for (const auto& lin : layer.message) {
      for (const auto& p : lin->Parameters()) ps.push_back(p);
    }
    for (const auto& p : layer.att_src) ps.push_back(p);
    for (const auto& p : layer.att_dst) ps.push_back(p);
    if (layer.norm) {
      for (const auto& p : layer.norm->Parameters()) ps.push_back(p);
    }
  }
  return ps;
}

}  // namespace relgraph

// Tests for the parallel columnar aggregation engine: feature layout,
// brute-force value checks over a hand-built world, the determinism
// contract (parallel output bit-identical to the serial oracle at 1, 2 and
// 8 threads), differential checks against the AggregateWindow reference
// evaluator, the temporal-leakage property under shuffled append
// schedules, and the hybrid GNN+tabular input block.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/columnar_agg.h"
#include "baselines/feature_aggregator.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "relational/append_log.h"
#include "relational/database.h"
#include "relational/query.h"

namespace relgraph {
namespace {

/// Every test leaves the pool at 1 thread so lane ordering can't leak
/// thread counts across tests.
class ColumnarAggTest : public testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetNumThreadsForTesting(1); }
};

// ------------------------------------------------------------ mini world
//
// users(id PK)
// products(id PK, price, quality)
// orders(id PK, user_id FK users, product_id FK products, total, ts TIME)

Database MakeMiniDb() {
  Database db("mini");

  TableSchema users("users");
  users.AddColumn("id", DataType::kInt64, false).SetPrimaryKey("id");
  Table* ut = db.AddTable(users).value();
  for (int64_t id = 0; id < 3; ++id) {
    EXPECT_TRUE(ut->AppendRow({Value(id)}).ok());
  }

  TableSchema products("products");
  products.AddColumn("id", DataType::kInt64, false)
      .AddColumn("price", DataType::kFloat64)
      .AddColumn("quality", DataType::kFloat64)
      .SetPrimaryKey("id");
  Table* pt = db.AddTable(products).value();
  EXPECT_TRUE(
      pt->AppendRow({Value(int64_t{10}), Value(5.0), Value(1.0)}).ok());
  EXPECT_TRUE(
      pt->AppendRow({Value(int64_t{11}), Value(7.0), Value(2.0)}).ok());
  EXPECT_TRUE(
      pt->AppendRow({Value(int64_t{12}), Value(9.0), Value(4.0)}).ok());

  TableSchema orders("orders");
  orders.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64)
      .AddColumn("product_id", DataType::kInt64)
      .AddColumn("total", DataType::kFloat64)
      .AddColumn("ts", DataType::kTimestamp)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .AddForeignKey("product_id", "products")
      .SetTimeColumn("ts");
  Table* ot = db.AddTable(orders).value();
  auto order = [&](int64_t id, int64_t user, int64_t product, double total,
                   int64_t day) {
    EXPECT_TRUE(ot->AppendRow({Value(id), Value(user), Value(product),
                               Value(total), Value::Time(Days(day))})
                    .ok());
  };
  // User 0: three orders inside [Days(1), Days(4)), one after the cutoff.
  order(0, 0, 10, 10.0, 1);
  order(1, 0, 11, 20.0, 2);
  order(2, 0, 11, 30.0, 3);
  order(3, 0, 12, 100.0, 5);
  // User 1: no orders. User 2: one order.
  order(4, 2, 10, 7.0, 2);
  return db;
}

std::vector<Value> RowValues(const Table& t, int64_t r) {
  std::vector<Value> out;
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    out.push_back(t.column(c).GetValue(r));
  }
  return out;
}

int64_t ColumnIndex(const ColumnarAggregator& agg, const std::string& name) {
  for (size_t i = 0; i < agg.feature_names().size(); ++i) {
    if (agg.feature_names()[i] == name) return static_cast<int64_t>(i);
  }
  ADD_FAILURE() << "feature '" << name << "' not found";
  return -1;
}

ColumnarAggOptions FullOptions() {
  ColumnarAggOptions opts;
  opts.windows = {Days(3), Days(1)};
  opts.value_aggs = FullAggVocabulary();
  opts.count_distinct = true;
  opts.missing_indicators = true;
  opts.max_hops = 2;
  return opts;
}

TEST_F(ColumnarAggTest, FeatureLayoutAndNames) {
  Database db = MakeMiniDb();
  auto agg = ColumnarAggregator::Build(db, "users", FullOptions()).value();
  ASSERT_EQ(agg.num_relations(), 1);
  // Per window: count + count_distinct(product_id) + 3 value columns
  // (hop-1 orders.total, hop-2 products.price and products.quality) ×
  // (11 aggregates + present indicator).
  const int64_t per_window = 1 + 1 + 3 * (11 + 1);
  EXPECT_EQ(agg.dim(), 2 * per_window + 1);  // 2 windows + recency
  EXPECT_GE(ColumnIndex(agg, "h1.count(orders)@3d"), 0);
  EXPECT_GE(ColumnIndex(agg, "h1.count_distinct(orders.product_id)@1d"), 0);
  EXPECT_GE(ColumnIndex(agg, "h1.median(orders.total)@3d"), 0);
  EXPECT_GE(ColumnIndex(agg, "h1.present(orders.total)@3d"), 0);
  EXPECT_GE(ColumnIndex(agg, "h2.skew(orders.product_id->products.price)@3d"),
            0);
  EXPECT_GE(ColumnIndex(agg, "h1.recency(orders)"), 0);
}

TEST_F(ColumnarAggTest, BruteForceAggregatesOverMiniWorld) {
  Database db = MakeMiniDb();
  auto agg = ColumnarAggregator::Build(db, "users", FullOptions()).value();
  const Timestamp cutoff = Days(4);
  Tensor f = agg.ComputeSerial({0, 1, 2}, {cutoff, cutoff, cutoff});

  auto at = [&](int64_t row, const std::string& name) {
    return f.at(row, ColumnIndex(agg, name));
  };
  // User 0, window 3d = [Days(1), Days(4)): totals {10, 20, 30}.
  EXPECT_FLOAT_EQ(at(0, "h1.count(orders)@3d"), 3.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.count_distinct(orders.product_id)@3d"), 2.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.sum(orders.total)@3d"), 60.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.mean(orders.total)@3d"), 20.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.min(orders.total)@3d"), 10.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.max(orders.total)@3d"), 30.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.median(orders.total)@3d"), 20.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.q25(orders.total)@3d"), 15.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.q75(orders.total)@3d"), 25.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.stddev(orders.total)@3d"),
                  static_cast<float>(std::sqrt(200.0 / 3.0)));
  EXPECT_FLOAT_EQ(at(0, "h1.skew(orders.total)@3d"), 0.0f);  // symmetric
  EXPECT_FLOAT_EQ(at(0, "h1.first(orders.total)@3d"), 10.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.last(orders.total)@3d"), 30.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.present(orders.total)@3d"), 1.0f);
  // Hop 2: prices of the ordered products {5, 7, 7}.
  EXPECT_FLOAT_EQ(at(0, "h2.mean(orders.product_id->products.price)@3d"),
                  static_cast<float>(19.0 / 3.0));
  EXPECT_FLOAT_EQ(at(0, "h2.min(orders.product_id->products.price)@3d"),
                  5.0f);
  // Window 1d = [Days(3), Days(4)): totals {30}.
  EXPECT_FLOAT_EQ(at(0, "h1.count(orders)@1d"), 1.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.median(orders.total)@1d"), 30.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.stddev(orders.total)@1d"), 0.0f);
  EXPECT_FLOAT_EQ(at(0, "h1.first(orders.total)@1d"), 30.0f);
  // The order at Days(5) is after the cutoff and never contributes.
  EXPECT_FLOAT_EQ(at(0, "h1.max(orders.total)@3d"), 30.0f);

  // User 1 has no orders: all aggregates 0, present indicators 0.
  EXPECT_FLOAT_EQ(at(1, "h1.count(orders)@3d"), 0.0f);
  EXPECT_FLOAT_EQ(at(1, "h1.mean(orders.total)@3d"), 0.0f);
  EXPECT_FLOAT_EQ(at(1, "h1.present(orders.total)@3d"), 0.0f);

  // User 2: single order of 7.0 at Days(2) — outside the 1d window.
  EXPECT_FLOAT_EQ(at(2, "h1.mean(orders.total)@3d"), 7.0f);
  EXPECT_FLOAT_EQ(at(2, "h1.present(orders.total)@3d"), 1.0f);
  EXPECT_FLOAT_EQ(at(2, "h1.count(orders)@1d"), 0.0f);
  EXPECT_FLOAT_EQ(at(2, "h1.present(orders.total)@1d"), 0.0f);

  // Recency is window-independent: user 0's last pre-cutoff event is
  // Days(3), one day before the cutoff; user 1 has none.
  EXPECT_FLOAT_EQ(at(0, "h1.recency(orders)"),
                  static_cast<float>(std::log1p(1.0)));
  EXPECT_FLOAT_EQ(at(1, "h1.recency(orders)"),
                  static_cast<float>(std::log1p(365.0)));
}

TEST_F(ColumnarAggTest, EmptyWindowDistinguishableFromTrueZero) {
  // A window holding exactly one 0-valued event must differ from an empty
  // window in the indicator column, not the (identical) mean.
  Database db("zeros");
  TableSchema users("users");
  users.AddColumn("id", DataType::kInt64, false).SetPrimaryKey("id");
  Table* ut = db.AddTable(users).value();
  EXPECT_TRUE(ut->AppendRow({Value(int64_t{0})}).ok());
  EXPECT_TRUE(ut->AppendRow({Value(int64_t{1})}).ok());
  TableSchema events("events");
  events.AddColumn("id", DataType::kInt64, false)
      .AddColumn("user_id", DataType::kInt64)
      .AddColumn("v", DataType::kFloat64)
      .AddColumn("ts", DataType::kTimestamp)
      .SetPrimaryKey("id")
      .AddForeignKey("user_id", "users")
      .SetTimeColumn("ts");
  Table* et = db.AddTable(events).value();
  EXPECT_TRUE(et->AppendRow({Value(int64_t{0}), Value(int64_t{0}),
                             Value(0.0), Value::Time(Days(1))})
                  .ok());
  ColumnarAggOptions opts;
  opts.windows = {Days(7)};
  opts.max_hops = 1;
  auto agg = ColumnarAggregator::Build(db, "users", opts).value();
  Tensor f = agg.ComputeSerial({0, 1}, {Days(2), Days(2)});
  const int64_t mean_col = ColumnIndex(agg, "h1.mean(events.v)@7d");
  const int64_t present_col = ColumnIndex(agg, "h1.present(events.v)@7d");
  EXPECT_FLOAT_EQ(f.at(0, mean_col), 0.0f);
  EXPECT_FLOAT_EQ(f.at(1, mean_col), 0.0f);
  EXPECT_FLOAT_EQ(f.at(0, present_col), 1.0f);  // true zero
  EXPECT_FLOAT_EQ(f.at(1, present_col), 0.0f);  // no events
}

TEST_F(ColumnarAggTest, MatchesAggregateWindowReference) {
  ECommerceConfig cfg;
  cfg.num_users = 60;
  cfg.num_products = 20;
  cfg.num_categories = 4;
  cfg.horizon_days = 90;
  Database db = MakeECommerceDb(cfg);
  ColumnarAggOptions opts;
  opts.windows = {Days(30)};
  opts.value_aggs = {ColumnarAgg::kSum, ColumnarAgg::kAvg, ColumnarAgg::kMin,
                     ColumnarAgg::kMax};
  opts.count_distinct = false;
  opts.max_hops = 1;
  auto agg = ColumnarAggregator::Build(db, "users", opts).value();
  auto idx = FkIndex::Build(db.table("orders"), "user_id").value();
  const Timestamp cutoff = Days(60);
  const Timestamp start = cutoff - Days(30);
  std::vector<int64_t> rows = {0, 7, 23, 41, 59};
  std::vector<Timestamp> cutoffs(rows.size(), cutoff);
  Tensor f = agg.ComputeSerial(rows, cutoffs);
  struct Case {
    const char* name;
    AggKind kind;
    const char* col;
  };
  const Case cases[] = {
      {"h1.count(orders)@30d", AggKind::kCount, ""},
      {"h1.sum(orders.total)@30d", AggKind::kSum, "total"},
      {"h1.mean(orders.total)@30d", AggKind::kAvg, "total"},
      {"h1.min(orders.total)@30d", AggKind::kMin, "total"},
      {"h1.max(orders.total)@30d", AggKind::kMax, "total"},
  };
  for (const auto& c : cases) {
    const int64_t col = ColumnIndex(agg, c.name);
    for (size_t i = 0; i < rows.size(); ++i) {
      const int64_t pk = db.table("users").PrimaryKey(rows[i]);
      const double expected =
          AggregateWindow(idx, pk, start, cutoff, c.kind, c.col).value();
      EXPECT_FLOAT_EQ(f.at(static_cast<int64_t>(i), col),
                      static_cast<float>(expected))
          << c.name << " row " << rows[i];
    }
  }
}

TEST_F(ColumnarAggTest, ParallelBitIdenticalToSerialAtAnyThreadCount) {
  ECommerceConfig cfg;
  cfg.num_users = 120;
  cfg.num_products = 30;
  cfg.num_categories = 5;
  cfg.horizon_days = 120;
  Database db = MakeECommerceDb(cfg);
  ColumnarAggOptions opts = FullOptions();
  opts.windows = {Days(7), Days(30), Days(10000)};
  opts.parallel_grain = 16;  // many chunks, so the schedule actually forks
  auto agg = ColumnarAggregator::Build(db, "users", opts).value();

  // Query rows at varied cutoffs, repeated so chunk boundaries land inside
  // duplicated runs too.
  Rng rng(905);
  std::vector<int64_t> rows;
  std::vector<Timestamp> cutoffs;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(rng.UniformInt(0, cfg.num_users - 1));
    cutoffs.push_back(Days(5 + rng.UniformInt(0, 110)));
  }
  const Tensor oracle = agg.ComputeSerial(rows, cutoffs);
  for (int i = 0; i < oracle.rows() * oracle.cols(); ++i) {
    ASSERT_FALSE(std::isnan(oracle.data()[i])) << "NaN leaked at " << i;
  }
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetNumThreadsForTesting(threads);
    const Tensor parallel = agg.Compute(rows, cutoffs);
    ASSERT_EQ(parallel.rows(), oracle.rows());
    ASSERT_EQ(parallel.cols(), oracle.cols());
    for (int64_t i = 0; i < oracle.rows() * oracle.cols(); ++i) {
      // Exact bit equality — the determinism contract, not a tolerance.
      ASSERT_EQ(parallel.data()[i], oracle.data()[i])
          << "mismatch at flat index " << i << " with " << threads
          << " threads";
    }
  }
}

TEST_F(ColumnarAggTest, FeatureAggregatorParallelMatchesSerialOracle) {
  ECommerceConfig cfg;
  cfg.num_users = 80;
  cfg.num_products = 20;
  cfg.num_categories = 4;
  cfg.horizon_days = 90;
  Database db = MakeECommerceDb(cfg);
  FeatureAggregatorOptions opts;
  opts.value_aggs = FullAggVocabulary();
  opts.count_distinct = true;
  auto agg = FeatureAggregator::Build(db, "users", opts).value();
  std::vector<int64_t> rows;
  std::vector<Timestamp> cutoffs;
  for (int64_t r = 0; r < cfg.num_users; ++r) {
    rows.push_back(r);
    cutoffs.push_back(Days(30 + (r % 50)));
  }
  const Tensor oracle = agg.ComputeSerial(rows, cutoffs);
  for (int threads : {2, 8}) {
    ThreadPool::SetNumThreadsForTesting(threads);
    const Tensor parallel = agg.Compute(rows, cutoffs);
    for (int64_t i = 0; i < oracle.rows() * oracle.cols(); ++i) {
      ASSERT_EQ(parallel.data()[i], oracle.data()[i]) << "flat " << i;
    }
  }
}

// --------------------------------------------------- temporal leakage
//
// Property: a child row with t >= cutoff never contributes to any
// aggregate at that cutoff. Harness: start from a truncated database
// holding only pre-cutoff events, then stream the post-cutoff rows in via
// shuffled ApplyAppend schedules (the PR 8 harness); features at the
// cutoff must be bit-identical before and after every append schedule.

TEST_F(ColumnarAggTest, NoTemporalLeakageAcrossShuffledAppendSchedules) {
  const Timestamp cutoff = Days(40);
  ECommerceConfig cfg;
  cfg.num_users = 50;
  cfg.num_products = 15;
  cfg.num_categories = 3;
  cfg.horizon_days = 80;
  Database full = MakeECommerceDb(cfg);

  // Rebuild the same world split at the cutoff: dimensions plus only the
  // pre-cutoff fact rows.
  auto split_db = [&]() {
    Database db("truncated");
    for (const char* dim : {"users", "categories", "products"}) {
      const Table& src = full.table(dim);
      Table* dst = db.AddTable(src.schema()).value();
      for (int64_t r = 0; r < src.num_rows(); ++r) {
        EXPECT_TRUE(dst->AppendRow(RowValues(src, r)).ok());
      }
    }
    for (const char* fact : {"orders", "reviews"}) {
      const Table& src = full.table(fact);
      Table* dst = db.AddTable(src.schema()).value();
      for (int64_t r = 0; r < src.num_rows(); ++r) {
        if (src.RowTime(r) < cutoff) {
          EXPECT_TRUE(dst->AppendRow(RowValues(src, r)).ok());
        }
      }
    }
    return db;
  };

  ColumnarAggOptions opts = FullOptions();
  opts.windows = {Days(7), Days(30), Days(10000)};
  Database truncated = split_db();
  auto base_agg = ColumnarAggregator::Build(truncated, "users", opts).value();
  std::vector<int64_t> rows(static_cast<size_t>(cfg.num_users));
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<Timestamp> cutoffs(rows.size(), cutoff);
  const Tensor clean = base_agg.ComputeSerial(rows, cutoffs);

  Rng rng(117);
  for (int schedule = 0; schedule < 4; ++schedule) {
    Database db = split_db();
    // Collect the post-cutoff rows and append them in shuffled order,
    // split into several batches (valid: require_monotonic_time defaults
    // off, and appends only reference existing dimension PKs).
    std::vector<std::pair<std::string, int64_t>> pending;
    for (const char* fact : {"orders", "reviews"}) {
      const Table& src = full.table(fact);
      for (int64_t r = 0; r < src.num_rows(); ++r) {
        if (src.RowTime(r) >= cutoff) pending.emplace_back(fact, r);
      }
    }
    ASSERT_FALSE(pending.empty());
    for (size_t i = pending.size(); i > 1; --i) {
      std::swap(pending[i - 1],
                pending[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(i) - 1))]);
    }
    size_t applied = 0;
    while (applied < pending.size()) {
      AppendBatch batch;
      const size_t n = std::min<size_t>(
          static_cast<size_t>(1 + rng.UniformInt(0, 30)),
          pending.size() - applied);
      for (size_t i = 0; i < n; ++i) {
        const auto& [tbl, row] = pending[applied + i];
        batch.Add(tbl, RowValues(full.table(tbl), row));
      }
      applied += n;
      ASSERT_TRUE(db.ApplyAppend(batch).ok());
    }

    auto agg = ColumnarAggregator::Build(db, "users", opts).value();
    ASSERT_EQ(agg.dim(), base_agg.dim());
    const Tensor after = agg.ComputeSerial(rows, cutoffs);
    for (int64_t i = 0; i < clean.rows() * clean.cols(); ++i) {
      ASSERT_EQ(after.data()[i], clean.data()[i])
          << "schedule " << schedule << " leaked at flat index " << i;
    }
  }
}

// ------------------------------------------------------------ hybrid block

TEST_F(ColumnarAggTest, HybridBlockIsZScoredAndPrefixed) {
  ECommerceConfig cfg;
  cfg.num_users = 50;
  cfg.num_products = 15;
  cfg.num_categories = 3;
  cfg.horizon_days = 60;
  Database db = MakeECommerceDb(cfg);
  auto block = BuildHybridAggBlock(db, "users", Days(45)).value();
  ASSERT_EQ(block.features.rows(), cfg.num_users);
  ASSERT_EQ(static_cast<int64_t>(block.feature_names.size()),
            block.features.cols());
  for (const auto& n : block.feature_names) {
    EXPECT_EQ(n.rfind("agg.", 0), 0u) << n;
  }
  // Each non-constant column is centered with unit variance; constant
  // columns are exactly 0. Everything is finite.
  for (int64_t c = 0; c < block.features.cols(); ++c) {
    double sum = 0.0, sum2 = 0.0;
    for (int64_t r = 0; r < block.features.rows(); ++r) {
      const double v = block.features.at(r, c);
      ASSERT_TRUE(std::isfinite(v));
      sum += v;
      sum2 += v * v;
    }
    const double n = static_cast<double>(block.features.rows());
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "column " << c;
    if (var > 1e-6) EXPECT_NEAR(var, 1.0, 1e-2) << "column " << c;
  }
}

TEST_F(ColumnarAggTest, HybridBlockAppendsToGraphNodeFeatures) {
  ECommerceConfig cfg;
  cfg.num_users = 30;
  cfg.num_products = 10;
  cfg.num_categories = 3;
  cfg.horizon_days = 60;
  Database db = MakeECommerceDb(cfg);
  GraphBuilderOptions plain;
  auto base = BuildDbGraph(db, plain).value();
  GraphBuilderOptions hybrid;
  hybrid.hybrid_blocks["users"] =
      BuildHybridAggBlock(db, "users", Days(45)).value();
  auto enriched = BuildDbGraph(db, hybrid).value();
  const int64_t extra =
      static_cast<int64_t>(hybrid.hybrid_blocks["users"].feature_names.size());
  ASSERT_GT(extra, 0);
  const auto& base_names = base.feature_names.at("users");
  const auto& rich_names = enriched.feature_names.at("users");
  ASSERT_EQ(rich_names.size(), base_names.size() + static_cast<size_t>(extra));
  EXPECT_EQ(rich_names.back().rfind("agg.", 0), 0u);
  const NodeTypeId type = enriched.type_of("users");
  EXPECT_EQ(enriched.graph.node_features(type).cols(),
            base.graph.node_features(base.type_of("users")).cols() + extra);
  // Other tables are untouched.
  EXPECT_EQ(enriched.feature_names.at("orders"),
            base.feature_names.at("orders"));
}

// -------------------------------------------------------------- validation

TEST_F(ColumnarAggTest, RejectsRecencyAsValueAggregate) {
  Database db = MakeMiniDb();
  ColumnarAggOptions opts;
  opts.value_aggs = {ColumnarAgg::kRecency};
  EXPECT_FALSE(ColumnarAggregator::Build(db, "users", opts).ok());
}

TEST_F(ColumnarAggTest, RejectsUnknownEntityTable) {
  Database db = MakeMiniDb();
  EXPECT_FALSE(ColumnarAggregator::Build(db, "ghost").ok());
}

}  // namespace
}  // namespace relgraph

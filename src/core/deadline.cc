#include "core/deadline.h"

#include <chrono>

namespace relgraph {

namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock* Clock::Real() {
  static const SteadyClock instance;
  return &instance;
}

Deadline Deadline::AfterMillis(double millis, const Clock* clock) {
  return AfterNanos(static_cast<int64_t>(millis * 1e6), clock);
}

Deadline Deadline::AfterNanos(int64_t nanos, const Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  return Deadline(clock, clock->NowNanos() + nanos);
}

Deadline Deadline::AtNanos(int64_t deadline_nanos, const Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  return Deadline(clock, deadline_nanos);
}

}  // namespace relgraph

// Property-based tests: invariants checked across parameter sweeps with
// TEST_P / INSTANTIATE_TEST_SUITE_P rather than single hand-picked cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/gbdt.h"
#include "core/rng.h"
#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "relational/query.h"
#include "sampler/neighbor_sampler.h"
#include "core/string_util.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "train/metrics.h"

namespace relgraph {
namespace {

// ================================================== sampler invariants

struct SamplerCase {
  int64_t fanout;
  int64_t depth;
  SamplePolicy policy;
  bool temporal;
};

class SamplerPropertyTest : public testing::TestWithParam<SamplerCase> {
 protected:
  static const DbGraph& Graph() {
    static DbGraph* graph = [] {
      ECommerceConfig cfg;
      cfg.num_users = 120;
      cfg.num_products = 30;
      cfg.num_categories = 4;
      cfg.horizon_days = 90;
      cfg.seed = 404;
      static Database* db = new Database(MakeECommerceDb(cfg));
      return new DbGraph(BuildDbGraph(*db).value());
    }();
    return *graph;
  }
};

TEST_P(SamplerPropertyTest, StructuralInvariantsHold) {
  const SamplerCase& param = GetParam();
  const DbGraph& dbg = Graph();
  const HeteroGraph& g = dbg.graph;
  SamplerOptions opts;
  opts.fanouts.assign(static_cast<size_t>(param.depth), param.fanout);
  opts.policy = param.policy;
  opts.temporal = param.temporal;
  NeighborSampler sampler(&g, opts);
  Rng rng(7);
  NodeTypeId users = g.FindNodeType("users").value();
  std::vector<int64_t> seeds = {0, 3, 7, 11, 19};
  const Timestamp cutoff = Days(60);
  Subgraph sg = sampler.Sample(users, seeds,
                               std::vector<Timestamp>(seeds.size(), cutoff),
                               &rng);
  ASSERT_EQ(sg.frontiers.size(), static_cast<size_t>(param.depth) + 1);
  ASSERT_EQ(sg.blocks.size(), static_cast<size_t>(param.depth));

  // (1) Self-prefix invariant at every layer/type.
  for (size_t k = 0; k + 1 < sg.frontiers.size(); ++k) {
    for (size_t t = 0; t < sg.frontiers[k].nodes.size(); ++t) {
      const auto& cur = sg.frontiers[k].nodes[t];
      const auto& next = sg.frontiers[k + 1].nodes[t];
      ASSERT_GE(next.size(), cur.size());
      for (size_t i = 0; i < cur.size(); ++i) EXPECT_EQ(next[i], cur[i]);
    }
  }
  // (2) All block indices valid; (3) per (target, edge type) edge count
  // bounded by the layer fanout.
  for (size_t k = 0; k < sg.blocks.size(); ++k) {
    for (const auto& block : sg.blocks[k]) {
      const NodeTypeId tgt_type = g.edge_src_type(block.edge_type);
      const NodeTypeId src_type = g.edge_dst_type(block.edge_type);
      const int64_t n_tgt = static_cast<int64_t>(
          sg.frontiers[k].nodes[tgt_type].size());
      const int64_t n_src = static_cast<int64_t>(
          sg.frontiers[k + 1].nodes[src_type].size());
      std::vector<int64_t> per_target(static_cast<size_t>(n_tgt), 0);
      ASSERT_EQ(block.target_local.size(), block.source_local.size());
      for (size_t i = 0; i < block.target_local.size(); ++i) {
        ASSERT_GE(block.target_local[i], 0);
        ASSERT_LT(block.target_local[i], n_tgt);
        ASSERT_GE(block.source_local[i], 0);
        ASSERT_LT(block.source_local[i], n_src);
        ++per_target[static_cast<size_t>(block.target_local[i])];
      }
      for (int64_t c : per_target) {
        EXPECT_LE(c, opts.fanouts[k]);
      }
    }
  }
  // (4) Temporal mode: no timestamped node at/after the cutoff anywhere.
  if (param.temporal) {
    for (const auto& frontier : sg.frontiers) {
      for (int32_t t = 0; t < g.num_node_types(); ++t) {
        for (int64_t node : frontier.nodes[static_cast<size_t>(t)]) {
          const Timestamp ts = g.node_time(t, node);
          if (ts != kNoTimestamp) {
            EXPECT_LT(ts, cutoff);
          }
        }
      }
    }
  }
  // (5) No duplicate (node, cutoff) entries within a frontier/type beyond
  // the seed layer (seeds may legitimately repeat).
  for (size_t k = 1; k < sg.frontiers.size(); ++k) {
    for (size_t t = 0; t < sg.frontiers[k].nodes.size(); ++t) {
      std::set<std::pair<int64_t, Timestamp>> seen;
      const auto& nodes = sg.frontiers[k].nodes[t];
      const auto& cuts = sg.frontiers[k].cutoffs[t];
      for (size_t i = 0; i < nodes.size(); ++i) {
        EXPECT_TRUE(seen.emplace(nodes[i], cuts[i]).second)
            << "duplicate node " << nodes[i] << " layer " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerPropertyTest,
    testing::Values(SamplerCase{2, 1, SamplePolicy::kUniform, true},
                    SamplerCase{5, 2, SamplePolicy::kUniform, true},
                    SamplerCase{10, 2, SamplePolicy::kUniform, true},
                    SamplerCase{10, 3, SamplePolicy::kUniform, true},
                    SamplerCase{5, 2, SamplePolicy::kMostRecent, true},
                    SamplerCase{2, 3, SamplePolicy::kMostRecent, true},
                    SamplerCase{5, 2, SamplePolicy::kUniform, false},
                    SamplerCase{20, 1, SamplePolicy::kMostRecent, false}));

// ================================================== autograd gradients

struct GradCase {
  const char* op;
  int64_t rows;
  int64_t cols;
};

class AutogradSweepTest : public testing::TestWithParam<GradCase> {};

TEST_P(AutogradSweepTest, NumericalGradientMatches) {
  const GradCase& param = GetParam();
  Rng rng(Fnv1a64(param.op) + static_cast<uint64_t>(param.rows * 31 +
                                                    param.cols));
  auto x = ag::Param(NormalInit(param.rows, param.cols, 1.0f, &rng));
  auto y = ag::Param(NormalInit(param.rows, param.cols, 1.0f, &rng));
  const std::string op = param.op;
  auto loss_fn = [&op](const std::vector<VarPtr>& in) -> VarPtr {
    VarPtr out;
    if (op == "tanh") {
      out = ag::Tanh(in[0]);
    } else if (op == "sigmoid") {
      out = ag::Sigmoid(in[0]);
    } else if (op == "exp") {
      out = ag::Exp(ag::Scale(in[0], 0.3f));  // bounded exponent
    } else if (op == "add") {
      out = ag::Add(in[0], in[1]);
    } else if (op == "sub") {
      out = ag::Sub(in[0], in[1]);
    } else if (op == "mul") {
      out = ag::Mul(in[0], in[1]);
    } else if (op == "scale") {
      out = ag::Scale(in[0], -1.7f);
    } else {
      ADD_FAILURE() << "unknown op " << op;
      out = in[0];
    }
    // Square so second-input gradients are non-trivial.
    return ag::Sum(ag::Mul(out, out));
  };
  std::vector<VarPtr> inputs = {x, y};
  VarPtr loss = loss_fn(inputs);
  for (auto& in : inputs) in->ZeroGrad();
  Backward(loss);
  const float eps = 1e-2f;
  for (auto& in : inputs) {
    for (int64_t i = 0; i < in->value().numel(); ++i) {
      const float orig = in->value().data()[i];
      in->mutable_value().data()[i] = orig + eps;
      const float up = loss_fn(inputs)->value().item();
      in->mutable_value().data()[i] = orig - eps;
      const float down = loss_fn(inputs)->value().item();
      in->mutable_value().data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(in->grad().data()[i], numeric,
                  3e-2f * std::max(1.0f, std::fabs(numeric)))
          << op << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AutogradSweepTest,
    testing::Values(GradCase{"tanh", 2, 3}, GradCase{"tanh", 5, 1},
                    GradCase{"sigmoid", 3, 3}, GradCase{"exp", 2, 4},
                    GradCase{"add", 4, 2}, GradCase{"sub", 3, 2},
                    GradCase{"mul", 2, 2}, GradCase{"scale", 1, 6}));

// ================================================== metric properties

class MetricsPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam());
  const int n = 200;
  std::vector<double> scores(n), labels(n);
  for (int i = 0; i < n; ++i) {
    scores[static_cast<size_t>(i)] = rng.Normal(0, 1);
    labels[static_cast<size_t>(i)] = rng.Bernoulli(0.4) ? 1.0 : 0.0;
  }
  const double auc = RocAuc(scores, labels);
  std::vector<double> transformed(n);
  for (int i = 0; i < n; ++i) {
    transformed[static_cast<size_t>(i)] =
        std::tanh(scores[static_cast<size_t>(i)]) * 10.0 + 3.0;
  }
  EXPECT_NEAR(RocAuc(transformed, labels), auc, 1e-12);
}

TEST_P(MetricsPropertyTest, AucFlipsUnderScoreNegation) {
  Rng rng(GetParam() + 1);
  const int n = 150;
  std::vector<double> scores(n), labels(n);
  for (int i = 0; i < n; ++i) {
    scores[static_cast<size_t>(i)] = rng.Uniform();  // ties unlikely
    labels[static_cast<size_t>(i)] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  std::vector<double> negated(n);
  for (int i = 0; i < n; ++i) {
    negated[static_cast<size_t>(i)] = -scores[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(RocAuc(scores, labels) + RocAuc(negated, labels), 1.0, 1e-9);
}

TEST_P(MetricsPropertyTest, RmseDominatesMae) {
  Rng rng(GetParam() + 2);
  const int n = 100;
  std::vector<double> pred(n), truth(n);
  for (int i = 0; i < n; ++i) {
    pred[static_cast<size_t>(i)] = rng.Normal(0, 2);
    truth[static_cast<size_t>(i)] = rng.Normal(0, 2);
  }
  EXPECT_GE(RootMeanSquaredError(pred, truth) + 1e-12,
            MeanAbsoluteError(pred, truth));
}

TEST_P(MetricsPropertyTest, PerfectPredictionsAreOptimal) {
  Rng rng(GetParam() + 3);
  const int n = 50;
  std::vector<double> truth(n);
  for (int i = 0; i < n; ++i) {
    truth[static_cast<size_t>(i)] = rng.Normal(5, 3);
  }
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, truth), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(truth, truth), 0.0);
  EXPECT_DOUBLE_EQ(R2Score(truth, truth), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u));

// ============================================= windowed-aggregate algebra

class AggregatePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, WindowAlgebraHolds) {
  ECommerceConfig cfg;
  cfg.num_users = 60;
  cfg.num_products = 20;
  cfg.num_categories = 4;
  cfg.horizon_days = 90;
  cfg.seed = GetParam();
  Database db = MakeECommerceDb(cfg);
  auto idx = FkIndex::Build(db.table("orders"), "user_id").value();
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t pk = rng.UniformInt(1, cfg.num_users);
    const Timestamp a = Days(rng.UniformInt(0, 40));
    const Timestamp b = a + Days(rng.UniformInt(1, 25));
    const Timestamp c = b + Days(rng.UniformInt(1, 25));
    // Count additivity over adjacent windows.
    const double ab =
        AggregateWindow(idx, pk, a, b, AggKind::kCount, "").value();
    const double bc =
        AggregateWindow(idx, pk, b, c, AggKind::kCount, "").value();
    const double ac =
        AggregateWindow(idx, pk, a, c, AggKind::kCount, "").value();
    EXPECT_DOUBLE_EQ(ab + bc, ac);
    // Sum additivity.
    const double sum_ab =
        AggregateWindow(idx, pk, a, b, AggKind::kSum, "total").value();
    const double sum_bc =
        AggregateWindow(idx, pk, b, c, AggKind::kSum, "total").value();
    const double sum_ac =
        AggregateWindow(idx, pk, a, c, AggKind::kSum, "total").value();
    EXPECT_NEAR(sum_ab + sum_bc, sum_ac, 1e-9);
    // avg * count == sum; min <= avg <= max when nonempty.
    if (ac > 0) {
      const double avg =
          AggregateWindow(idx, pk, a, c, AggKind::kAvg, "total").value();
      const double mn =
          AggregateWindow(idx, pk, a, c, AggKind::kMin, "total").value();
      const double mx =
          AggregateWindow(idx, pk, a, c, AggKind::kMax, "total").value();
      EXPECT_NEAR(avg * ac, sum_ac, 1e-6);
      EXPECT_LE(mn, avg + 1e-9);
      EXPECT_LE(avg, mx + 1e-9);
      EXPECT_DOUBLE_EQ(
          AggregateWindow(idx, pk, a, c, AggKind::kExists, "").value(), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         testing::Values(201u, 202u, 203u, 204u));

// ===================================================== GBDT properties

class GbdtPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GbdtPropertyTest, ProbabilitiesInUnitIntervalAndFitImproves) {
  Rng rng(GetParam());
  const int n = 300;
  Tensor x(n, 3);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) {
      x.at(i, c) = static_cast<float>(rng.Normal(0, 1));
    }
    y[static_cast<size_t>(i)] =
        (x.at(i, 0) + 0.5 * x.at(i, 1) + rng.Normal(0, 0.3)) > 0 ? 1.0 : 0.0;
  }
  std::vector<int64_t> train, test;
  for (int64_t i = 0; i < 200; ++i) train.push_back(i);
  for (int64_t i = 200; i < n; ++i) test.push_back(i);
  GbdtModel model;
  ASSERT_TRUE(
      model.Fit(x, y, TaskKind::kBinaryClassification, train, {}).ok());
  auto preds = model.Predict(x, test);
  for (double p : preds) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  std::vector<double> truth(y.begin() + 200, y.end());
  EXPECT_GT(RocAuc(preds, truth), 0.8);
}

TEST_P(GbdtPropertyTest, RegressionPredictionsWithinLabelHull) {
  // Trees average training labels, so predictions can never leave the
  // [min, max] hull of the training labels (base score included).
  Rng rng(GetParam() + 10);
  const int n = 200;
  Tensor x(n, 2);
  std::vector<double> y(n);
  double lo = 1e30, hi = -1e30;
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.Uniform(-2, 2));
    x.at(i, 1) = static_cast<float>(rng.Uniform(-2, 2));
    y[static_cast<size_t>(i)] = 3.0 * x.at(i, 0) + rng.Normal(0, 0.2);
    lo = std::min(lo, y[static_cast<size_t>(i)]);
    hi = std::max(hi, y[static_cast<size_t>(i)]);
  }
  std::vector<int64_t> all(n);
  for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  GbdtModel model;
  ASSERT_TRUE(model.Fit(x, y, TaskKind::kRegression, all, {}).ok());
  auto preds = model.Predict(x, all);
  const double margin = (hi - lo) * 0.05 + 1e-6;
  for (double p : preds) {
    EXPECT_GE(p, lo - margin);
    EXPECT_LE(p, hi + margin);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbdtPropertyTest,
                         testing::Values(301u, 302u, 303u));

}  // namespace
}  // namespace relgraph

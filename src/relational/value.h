#ifndef RELGRAPH_RELATIONAL_VALUE_H_
#define RELGRAPH_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "core/time.h"

namespace relgraph {

/// Column/value types supported by the relational engine.
///
/// `kTimestamp` is physically an int64 (seconds, see core/time.h) but kept
/// as a distinct logical type so DB→graph conversion can recognize temporal
/// columns automatically.
enum class DataType {
  kInt64,
  kFloat64,
  kBool,
  kString,
  kTimestamp,
};

/// Human-readable type name ("INT64", "FLOAT64", ...).
const char* DataTypeName(DataType type);

/// A single nullable SQL-style scalar.
class Value {
 public:
  /// NULL.
  Value() : data_(std::monostate{}) {}
  /*implicit*/ Value(int64_t v) : data_(v) {}
  /*implicit*/ Value(int v) : data_(static_cast<int64_t>(v)) {}
  /*implicit*/ Value(double v) : data_(v) {}
  /*implicit*/ Value(bool v) : data_(v) {}
  /*implicit*/ Value(std::string v) : data_(std::move(v)) {}
  /*implicit*/ Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Time(Timestamp t) { return Value(static_cast<int64_t>(t)); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  Timestamp as_time() const { return std::get<int64_t>(data_); }

  /// Numeric view: ints, doubles and bools coerce to double; others abort.
  double ToDouble() const;

  /// Renders for CSV/debug output; NULL renders as the empty string.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> data_;
};

}  // namespace relgraph

#endif  // RELGRAPH_RELATIONAL_VALUE_H_

#ifndef RELGRAPH_CORE_TRACE_H_
#define RELGRAPH_CORE_TRACE_H_

// RAII trace spans forming a hierarchical timing tree.
//
// A TraceSpan records its name, wall time, thread CPU time, owning thread,
// and parent span. Parenthood is tracked per thread: the innermost live
// span on the constructing thread becomes the parent. Work shipped to the
// thread pool nests explicitly: capture TraceCollector::CurrentSpanId()
// before dispatch and pass it to the TraceSpan(name, parent_id)
// constructor inside the worker.
//
// Spans share the metrics on/off switch (RELGRAPH_METRICS env var /
// SetMetricsEnabled): when disabled, constructing a span is one relaxed
// atomic load and no allocation. The collector is bounded (spans beyond
// the capacity are dropped and counted in trace_spans_dropped_total), so
// long training runs cannot grow memory without bound.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace relgraph {

/// One completed (or still-open) span in the process-wide trace.
struct TraceSpanRecord {
  int64_t id = -1;
  int64_t parent = -1;  ///< -1 for roots
  std::string name;
  double start_us = 0.0;  ///< relative to the collector's epoch (or last Reset)
  double wall_us = 0.0;   ///< 0 while the span is still open
  double cpu_us = 0.0;    ///< thread CPU time consumed inside the span
  int thread = 0;         ///< dense per-process thread index (main = 0)
  bool closed = false;
};

/// Process-wide bounded span store.
class TraceCollector {
 public:
  static TraceCollector& Global();

  /// Innermost live span on the calling thread (-1 when none). Capture
  /// this before handing work to the pool to keep the tree connected.
  static int64_t CurrentSpanId();

  /// Number of recorded spans (open + closed).
  size_t size() const;

  /// Spans recorded since the last Reset, id order. Copy: safe to inspect
  /// while other threads keep tracing.
  std::vector<TraceSpanRecord> Snapshot() const;

  /// Drops all spans and restarts ids from 0 (epoch moves to now).
  void Reset();

  /// Maximum retained spans (default 65536); excess spans are dropped and
  /// counted in the trace_spans_dropped_total counter.
  void SetCapacityForTesting(size_t capacity);

  /// Hierarchical JSON: [{"name": ..., "thread": t, "start_us": ...,
  /// "wall_us": ..., "cpu_us": ..., "children": [...]}, ...] with children
  /// in id (start) order. With include_timings=false every timing field is
  /// emitted as 0, giving a byte-stable dump for golden tests.
  std::string DumpJson(bool include_timings = true) const;

  /// Indented one-line-per-span tree for terminals.
  std::string DumpText() const;

 private:
  friend class TraceSpan;
  TraceCollector();

  int64_t Begin(std::string_view name, int64_t parent);
  void End(int64_t id, double wall_us, double cpu_us);

  struct Impl;
  Impl* impl_;
};

/// Convenience dumps of the global collector.
std::string DumpTraceJson(bool include_timings = true);
std::string DumpTraceText();

/// Atomically writes DumpTraceJson() to `path`.
Status WriteTraceJson(const std::string& path, bool include_timings = true);

/// RAII span: opens on construction, closes (recording wall/CPU time) on
/// destruction. No-op when metrics are disabled.
class TraceSpan {
 public:
  /// Parent = innermost live span on this thread.
  explicit TraceSpan(std::string_view name);

  /// Explicit parent, for work running on a pool worker on behalf of a
  /// span opened on another thread (pass the captured CurrentSpanId()).
  TraceSpan(std::string_view name, int64_t parent_id);

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Id of this span (-1 when tracing is disabled or the span was
  /// dropped).
  int64_t id() const { return id_; }

 private:
  void Open(std::string_view name, int64_t parent);

  int64_t id_ = -1;
  int64_t saved_current_ = -1;
  double start_wall_us_ = 0.0;
  double start_cpu_us_ = 0.0;
};

}  // namespace relgraph

#ifdef RELGRAPH_NO_METRICS
#define RELGRAPH_TRACE_SPAN(name)
#else
#define RELGRAPH_TRACE_CONCAT_(a, b) a##b
#define RELGRAPH_TRACE_CONCAT(a, b) RELGRAPH_TRACE_CONCAT_(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define RELGRAPH_TRACE_SPAN(name)                                   \
  ::relgraph::TraceSpan RELGRAPH_TRACE_CONCAT(relgraph_trace_span_, \
                                              __COUNTER__)(name)
#endif

#endif  // RELGRAPH_CORE_TRACE_H_

#ifndef RELGRAPH_DB2GRAPH_GRAPH_BUILDER_H_
#define RELGRAPH_DB2GRAPH_GRAPH_BUILDER_H_

#include <map>
#include <string>

#include "db2graph/feature_encoder.h"
#include "graph/hetero_graph.h"
#include "relational/database.h"

namespace relgraph {

/// Options for DB→graph conversion.
struct GraphBuilderOptions {
  EncodeOptions encode;

  /// Emit a reverse edge type ("rev_<name>") for every FK so message
  /// passing can flow both ways (child→parent and parent→child).
  bool add_reverse_edges = true;

  /// Stores every node-feature matrix int8-quantized (symmetric per-row
  /// scales) instead of fp32, cutting feature-residency to roughly a
  /// quarter. Serving-oriented: the encoder fits its statistics in fp32
  /// as usual, then each table's matrix is quantized once and the fp32
  /// payload dropped. Encoded features are finite by construction, so
  /// quantization cannot fail on a clean build.
  bool quantize_features = false;

  /// Degraded-mode build: dangling FK values are skipped (no edge) and
  /// counted into DbGraph::skipped_dangling_fks instead of aborting the
  /// conversion. Used when the engine accepts a database that failed
  /// Validate().
  bool lenient = false;

  /// Tables listed here are encoded under the given frozen plans instead
  /// of refitting encoder statistics on the table's current rows. A
  /// refit on a grown table shifts means and vocabulary slots, changing
  /// every feature; the streaming layer freezes plans at stream creation,
  /// and the differential test harness passes the same plans here so a
  /// from-scratch batch rebuild is bit-comparable to the incrementally
  /// maintained graph.
  std::map<std::string, EncoderPlan> frozen_plans;

  /// Extra row-aligned feature blocks appended after the encoder's output
  /// for the named tables — the hybrid GNN+tabular input path (e.g.
  /// BuildHybridAggBlock's z-scored aggregate matrix for the entity
  /// table). The block must be computed at a cutoff no later than the
  /// earliest training cutoff to stay leakage-free, and is batch-build
  /// only: the streaming layer does not maintain hybrid blocks.
  std::map<std::string, EncodedTable> hybrid_blocks;
};

/// The result of converting a relational database into a heterogeneous
/// temporal graph. Node `i` of the type named after table T is exactly row
/// `i` of T; edge types are named `<table>__<fk_column>` (and the
/// `rev_`-prefixed reverse).
struct DbGraph {
  HeteroGraph graph;

  /// table name -> node type id.
  std::map<std::string, NodeTypeId> table_type;

  /// Per node type, the feature names produced by the encoder (aligned
  /// with graph.node_features columns).
  std::map<std::string, std::vector<std::string>> feature_names;

  /// Lenient builds only: dangling-FK edges skipped per edge type
  /// ("table__fk" -> count); empty for a clean or strict build.
  std::map<std::string, int64_t> skipped_dangling_fks;

  int64_t TotalSkippedFks() const {
    int64_t total = 0;
    for (const auto& [name, n] : skipped_dangling_fks) total += n;
    return total;
  }

  NodeTypeId type_of(const std::string& table) const {
    return table_type.at(table);
  }
};

/// Converts `db` into a DbGraph:
///  - every table becomes a node type (rows = nodes, attributes = encoded
///    features, event time = node timestamp);
///  - every foreign key becomes a directed edge type child→parent with the
///    child row's event time as the edge timestamp (plus the reverse type
///    when enabled);
///  - NULL foreign keys produce no edge.
///
/// The database should Validate() cleanly; dangling FKs are reported as
/// errors here too.
Result<DbGraph> BuildDbGraph(const Database& db,
                             const GraphBuilderOptions& options = {});

}  // namespace relgraph

#endif  // RELGRAPH_DB2GRAPH_GRAPH_BUILDER_H_

#include "serve/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "core/logging.h"
#include "core/metrics.h"
#include "core/timer.h"
#include "core/trace.h"
#include "tensor/serialize.h"

namespace relgraph {

namespace {

// One observation per Score call; runs after the scores are computed so
// instrumentation can never perturb them.
inline void NoteScore(double millis) {
#ifndef RELGRAPH_NO_METRICS
  if (!MetricsEnabled()) return;
  static Histogram* latency = MetricsRegistry::Global().GetHistogram(
      "serve_score_latency_ms", FineLatencyBucketsMs());
  latency->Observe(millis);
#else
  (void)millis;
#endif
}

}  // namespace

InferenceEngine::InferenceEngine(const HeteroGraph* graph,
                                 NodeTypeId entity_type, TaskKind kind,
                                 int64_t num_classes, const GnnConfig& gnn,
                                 const SamplerOptions& sampler_options,
                                 Timestamp now_cutoff,
                                 const ServeOptions& serve)
    : entity_type_(entity_type),
      kind_(kind),
      num_classes_(num_classes),
      gnn_(gnn),
      sampler_options_(sampler_options),
      serve_(serve),
      salt_(serve.seed ^ OptionsFingerprint(sampler_options)),
      graph_(graph),
      now_cutoff_(now_cutoff),
      subgraph_cache_(serve.subgraph_cache_capacity),
      embedding_cache_(serve.embedding_cache_capacity) {
  RELGRAPH_CHECK(graph_ != nullptr);
  RELGRAPH_CHECK(kind_ != TaskKind::kRanking)
      << "InferenceEngine serves node-level (scalar) tasks only";
  RELGRAPH_CHECK(static_cast<int64_t>(sampler_options_.fanouts.size()) ==
                 gnn_.num_layers)
      << "sampler depth must match GNN layers";
  RELGRAPH_CHECK(serve_.micro_batch_size > 0);
  sampler_ = std::make_unique<NeighborSampler>(graph_, sampler_options_);
  // Weight init is placeholder — LoadCheckpoint overwrites every tensor.
  Rng init_rng(serve_.seed);
  model_ = std::make_unique<HeteroSageModel>(graph_, gnn_, &init_rng);
  if (kind_ == TaskKind::kMulticlassClassification) {
    cls_head_ = std::make_unique<ClassificationHead>(gnn_.hidden_dim,
                                                     num_classes_, &init_rng);
  } else {
    scalar_head_ = std::make_unique<ScalarHead>(gnn_.hidden_dim, &init_rng);
  }
}

InferenceEngine::InferenceEngine(const ServePlan& plan,
                                 const ServeOptions& serve)
    : InferenceEngine(plan.graph, plan.entity_type, plan.kind,
                      plan.num_classes, plan.gnn, plan.sampler,
                      plan.now_cutoff, [&] {
                        ServeOptions s = serve;
                        s.seed = plan.seed;
                        return s;
                      }()) {}

Status InferenceEngine::LoadCheckpoint(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
  RELGRAPH_ASSIGN_OR_RETURN(TensorBundle bundle, LoadTensorBundle(path));
  const std::vector<Tensor> current = ParameterValues({model_.get(), head()});
  if (bundle.tensors.size() != current.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(bundle.tensors.size()) +
        " tensors, serving model has " + std::to_string(current.size()) +
        " (architecture mismatch?)");
  }
  for (size_t i = 0; i < current.size(); ++i) {
    if (!bundle.tensors[i].SameShape(current[i])) {
      return Status::InvalidArgument("checkpoint tensor " +
                                     std::to_string(i) + " shape mismatch");
    }
  }
  if (bundle.scalars.size() != 3) {
    return Status::InvalidArgument("checkpoint scalar block malformed");
  }
  AssignParameterValues({model_.get(), head()}, bundle.tensors);
  label_mean_ = bundle.scalars[0];
  label_std_ = bundle.scalars[1];
  loaded_ = true;
  // Cached embeddings were produced by the previous weights; subgraphs
  // depend only on the sampler and survive a weight swap.
  embedding_cache_.Clear();
  return Status::OK();
}

std::shared_ptr<const Subgraph> InferenceEngine::GetSubgraph(int64_t node) {
  if (!serve_.enable_subgraph_cache) {
    RELGRAPH_COUNTER_INC("serve_subgraph_cache_misses_total");
    return std::make_shared<const Subgraph>(sampler_->SampleForServing(
        entity_type_, node, now_cutoff_, salt_));
  }
  const SubgraphKey key{node, snapshot_version_.load(std::memory_order_relaxed),
                        OptionsFingerprint(sampler_options_)};
  std::shared_ptr<const Subgraph> sg;
  if (subgraph_cache_.Get(key, &sg)) {
    RELGRAPH_COUNTER_INC("serve_subgraph_cache_hits_total");
    return sg;
  }
  RELGRAPH_COUNTER_INC("serve_subgraph_cache_misses_total");
  sg = std::make_shared<const Subgraph>(
      sampler_->SampleForServing(entity_type_, node, now_cutoff_, salt_));
  subgraph_cache_.Put(key, sg);
  return sg;
}

Tensor InferenceEngine::EmbedMicroBatch(const std::vector<int64_t>& ids) {
  // Per-seed subgraphs (cached or freshly sampled) concatenate
  // block-diagonally; the encoder forward is then per-row bit-identical
  // to running each seed alone, so batch composition never leaks into a
  // seed's embedding.
  std::vector<std::shared_ptr<const Subgraph>> held;
  std::vector<const Subgraph*> parts;
  held.reserve(ids.size());
  parts.reserve(ids.size());
  for (int64_t id : ids) {
    held.push_back(GetSubgraph(id));
    parts.push_back(held.back().get());
  }
  const Subgraph sg = ConcatSubgraphs(graph_, parts);
  VarPtr emb = model_->Forward(sg, entity_type_, /*rng=*/nullptr,
                               /*training=*/false);
  RELGRAPH_CHECK(emb->rows() == static_cast<int64_t>(ids.size()));
  return emb->value();
}

Result<std::vector<double>> InferenceEngine::ScoreLocked(
    const std::vector<int64_t>& entity_ids, bool count_request) {
  if (!loaded_) {
    return Status::FailedPrecondition(
        "no checkpoint loaded; call LoadCheckpoint before Score");
  }
  const int64_t n = static_cast<int64_t>(entity_ids.size());
  if (n == 0) return std::vector<double>{};
  const int64_t num_entities = graph_->num_nodes(entity_type_);
  for (int64_t id : entity_ids) {
    if (id < 0 || id >= num_entities) {
      return Status::InvalidArgument(
          "entity id " + std::to_string(id) + " out of range [0, " +
          std::to_string(num_entities) + ")");
    }
  }
  Timer timer;
  const int64_t hidden = gnn_.hidden_dim;
  Tensor emb = Tensor::Zeros(n, hidden);

  // Probe the embedding cache; collect distinct uncached ids (a duplicate
  // id in one request is computed once — its embedding is a pure function
  // of the id, so every position gets the identical row).
  std::vector<int64_t> pending;
  std::unordered_map<int64_t, std::vector<int64_t>> rows_of;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t id = entity_ids[static_cast<size_t>(i)];
    if (serve_.enable_embedding_cache) {
      std::shared_ptr<const std::vector<float>> row;
      if (embedding_cache_.Get(id, &row)) {
        RELGRAPH_COUNTER_INC("serve_embedding_cache_hits_total");
        std::memcpy(&emb.at(i, 0), row->data(),
                    sizeof(float) * static_cast<size_t>(hidden));
        continue;
      }
      RELGRAPH_COUNTER_INC("serve_embedding_cache_misses_total");
    }
    auto [it, inserted] = rows_of.try_emplace(id);
    if (inserted) pending.push_back(id);
    it->second.push_back(i);
  }

  // Coalesce uncached ids into fixed-size micro-batches through the
  // batched (parallel-GEMM) forward path.
  for (size_t start = 0; start < pending.size();
       start += static_cast<size_t>(serve_.micro_batch_size)) {
    const size_t end =
        std::min(pending.size(),
                 start + static_cast<size_t>(serve_.micro_batch_size));
    const std::vector<int64_t> batch(pending.begin() + static_cast<int64_t>(start),
                                     pending.begin() + static_cast<int64_t>(end));
    const Tensor batch_emb = EmbedMicroBatch(batch);
    for (size_t j = 0; j < batch.size(); ++j) {
      const int64_t id = batch[j];
      const float* src =
          batch_emb.data() + static_cast<int64_t>(j) * hidden;
      for (int64_t i : rows_of.at(id)) {
        std::memcpy(&emb.at(i, 0), src,
                    sizeof(float) * static_cast<size_t>(hidden));
      }
      if (serve_.enable_embedding_cache) {
        auto row = std::make_shared<std::vector<float>>(src, src + hidden);
        embedding_cache_.Put(id, std::move(row));
      }
    }
  }

  // One head forward over the assembled embeddings; the head MLP is
  // row-wise, so each score is still a pure per-entity function.
  VarPtr out = cls_head_ ? cls_head_->Forward(ag::Constant(emb))
                         : scalar_head_->Forward(ag::Constant(emb));
  std::vector<double> scores;
  scores.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    switch (kind_) {
      case TaskKind::kBinaryClassification:
        scores.push_back(1.0 / (1.0 + std::exp(-out->value().at(r, 0))));
        break;
      case TaskKind::kRegression:
        scores.push_back(out->value().at(r, 0) * label_std_ + label_mean_);
        break;
      case TaskKind::kMulticlassClassification: {
        int64_t arg = 0;
        for (int64_t c = 1; c < out->cols(); ++c) {
          if (out->value().at(r, c) > out->value().at(r, arg)) arg = c;
        }
        scores.push_back(static_cast<double>(arg));
        break;
      }
      case TaskKind::kRanking:
        break;
    }
  }
  if (count_request) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    entities_scored_.fetch_add(n, std::memory_order_relaxed);
    RELGRAPH_COUNTER_INC("serve_requests_total");
    RELGRAPH_COUNTER_ADD("serve_entities_scored_total", n);
  }
  NoteScore(timer.Millis());
  return scores;
}

Result<std::vector<double>> InferenceEngine::Score(
    const std::vector<int64_t>& entity_ids) {
  RELGRAPH_TRACE_SPAN("serve/score");
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return ScoreLocked(entity_ids);
}

Status InferenceEngine::WarmUp(const std::vector<int64_t>& entity_ids) {
  RELGRAPH_TRACE_SPAN("serve/warmup");
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  RELGRAPH_COUNTER_ADD("serve_warmup_entities_total",
                       static_cast<int64_t>(entity_ids.size()));
  RELGRAPH_ASSIGN_OR_RETURN(std::vector<double> ignored,
                            ScoreLocked(entity_ids, /*count_request=*/false));
  (void)ignored;
  return Status::OK();
}

Status InferenceEngine::AdvanceSnapshot(const HeteroGraph* graph,
                                        Timestamp now_cutoff) {
  std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
  if (graph == nullptr) {
    return Status::InvalidArgument("AdvanceSnapshot: null graph");
  }
  if (graph->num_node_types() != graph_->num_node_types() ||
      graph->num_edge_types() != graph_->num_edge_types()) {
    return Status::InvalidArgument(
        "AdvanceSnapshot: snapshot layout mismatch (type counts)");
  }
  for (EdgeTypeId e = 0; e < graph->num_edge_types(); ++e) {
    if (graph->edge_src_type(e) != graph_->edge_src_type(e) ||
        graph->edge_dst_type(e) != graph_->edge_dst_type(e)) {
      return Status::InvalidArgument(
          "AdvanceSnapshot: snapshot layout mismatch (edge endpoints)");
    }
  }
  for (int32_t t = 0; t < graph->num_node_types(); ++t) {
    if (graph->feature_dim(t) != graph_->feature_dim(t)) {
      return Status::InvalidArgument(
          "AdvanceSnapshot: snapshot layout mismatch (feature widths)");
    }
  }
  model_->RebindGraph(graph);
  graph_ = graph;
  sampler_ = std::make_unique<NeighborSampler>(graph_, sampler_options_);
  now_cutoff_ = now_cutoff;
  snapshot_version_.fetch_add(1, std::memory_order_relaxed);
  // Old-version subgraph keys can no longer match; the LRU ages them out.
  // Embeddings have no version in their key — drop them outright.
  embedding_cache_.Clear();
  RELGRAPH_COUNTER_INC("serve_snapshot_advances_total");
  return Status::OK();
}

ServeStats InferenceEngine::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.entities_scored = entities_scored_.load(std::memory_order_relaxed);
  s.subgraph_hits = subgraph_cache_.hits();
  s.subgraph_misses = subgraph_cache_.misses();
  s.embedding_hits = embedding_cache_.hits();
  s.embedding_misses = embedding_cache_.misses();
  s.snapshot_version = snapshot_version_.load(std::memory_order_relaxed);
  return s;
}

Timestamp InferenceEngine::now_cutoff() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return now_cutoff_;
}

bool InferenceEngine::loaded() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return loaded_;
}

}  // namespace relgraph

#include "core/atomic_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "core/fault_injection.h"

namespace relgraph {

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  FaultInjector& faults = FaultInjector::Global();

  if (faults.ShouldFire(FaultSite::kAtomicWriteOpen)) {
    return Status::IoError("injected fault: cannot open for writing: " + tmp);
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp + " (" +
                           std::strerror(errno) + ")");
  }

  // A torn write models a crash after rename on a filesystem that reordered
  // the data flush: the final file exists but is truncated. Readers must
  // detect this and fail with a clean Status.
  size_t to_write = contents.size();
  if (faults.ShouldFire(FaultSite::kAtomicWriteShort)) {
    to_write /= 2;
  }
  if (to_write > 0 &&
      std::fwrite(contents.data(), 1, to_write, f) != to_write) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("short write: " + tmp);
  }
  if (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("flush failed: " + tmp);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed: " + tmp);
  }

  if (faults.ShouldFire(FaultSite::kAtomicWriteRename)) {
    std::remove(tmp.c_str());
    return Status::IoError("injected fault: rename failed: " + tmp + " -> " +
                           path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path + " (" +
                           std::strerror(errno) + ")");
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace relgraph

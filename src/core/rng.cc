#include "core/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace relgraph {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng Rng::Fork(uint64_t stream) const {
  // Funnel the full state and the stream index through splitmix64 so
  // nearby stream indices land in unrelated parts of the seed space.
  uint64_t acc = 0x6A09E667F3BCC909ULL ^ (stream * 0xD2B74407B1CE6E93ULL);
  for (uint64_t word : s_) {
    acc ^= word;
    acc = SplitMix64(&acc) ^ acc;
  }
  return Rng(acc);
}

Rng Rng::Split() { return Rng(NextU64()); }

std::array<uint64_t, 4> Rng::GetState() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::SetState(const std::array<uint64_t, 4>& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = Uniform();
    int n = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  double x = Normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

double Rng::Exponential(double rate) {
  double u = Uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

int Rng::PowerLawIndex(int n, double alpha) {
  assert(n > 0);
  // Inverse-CDF sampling of a continuous power law on [1, n+1), truncated.
  if (alpha == 1.0) alpha = 1.0 + 1e-9;
  double u = Uniform();
  double one_minus = 1.0 - alpha;
  double max_pow = std::pow(static_cast<double>(n + 1), one_minus);
  double x = std::pow(u * (max_pow - 1.0) + 1.0, 1.0 / one_minus);
  int idx = static_cast<int>(x) - 1;
  if (idx < 0) idx = 0;
  if (idx >= n) idx = n - 1;
  return idx;
}

int Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return static_cast<int>(weights.size()) - 1;
  double target = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  std::vector<int64_t> out;
  if (n <= 0 || k <= 0) return out;
  if (k >= n) {
    out.resize(static_cast<size_t>(n));
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  if (k * 3 >= n) {
    // Dense path: partial Fisher-Yates.
    std::vector<int64_t> pool(static_cast<size_t>(n));
    std::iota(pool.begin(), pool.end(), 0);
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = i + static_cast<int64_t>(UniformU64(
                          static_cast<uint64_t>(n - i)));
      std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    }
    pool.resize(static_cast<size_t>(k));
    return pool;
  }
  // Sparse path: rejection into a hash set.
  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(k) * 2);
  out.reserve(static_cast<size_t>(k));
  while (static_cast<int64_t>(out.size()) < k) {
    int64_t v = static_cast<int64_t>(UniformU64(static_cast<uint64_t>(n)));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace relgraph

#ifndef RELGRAPH_TENSOR_SIMD_KERNELS_H_
#define RELGRAPH_TENSOR_SIMD_KERNELS_H_

#include <cstdint>

namespace relgraph {
namespace kern {

/// Low-level tensor microkernels with two interchangeable builds selected
/// by the `RELGRAPH_SIMD` CMake option: AVX2 intrinsics, or a portable
/// scalar twin.
///
/// **The two builds are bit-identical.** Every kernel's per-output
/// operation sequence is fixed by contract, not by implementation:
///
///  - GEMM-family outputs accumulate `round(a*b)` then add, ascending over
///    the inner dimension — the textbook order — which no register tiling,
///    column blocking, or B-packing can change (lanes are independent
///    output elements).
///  - Dot-product-family outputs (`MatMulBT`) use `LaneDot`: eight float
///    partial sums (lane l takes elements 8t+l), combined in the fixed
///    tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then the tail folded in
///    ascending order. The scalar build implements the same lanes in plain
///    code.
///  - `ExpRef` is a shared Cephes-style polynomial; the AVX2 path applies
///    the identical operation sequence per lane.
///
/// FMA contraction is deliberately OFF (the SIMD translation unit builds
/// with `-mavx2 -ffp-contract=off`, no `-mfma`): a fused multiply-add
/// rounds once where the contract rounds twice, which would fork the
/// numeric results between the SIMD and portable builds and invalidate
/// the committed golden files in one of them. AVX2 mul+add still clears
/// the kernel perf targets by a wide margin.
///
/// All kernels are chunk-local (no internal threading): callers hand them
/// disjoint output ranges from `ParallelFor`, so thread-count bit-equality
/// is inherited from the PR-2 runtime contract.

/// True when this build compiled the AVX2 path.
bool SimdEnabled();

/// "avx2" or "scalar" (for bench records and logs).
const char* SimdName();

// ----------------------------------------------------------- elementwise

/// dst[i] += src[i].
void AddInto(float* dst, const float* src, int64_t n);

/// o[i] = a[i] - b[i].
void SubOut(float* o, const float* a, const float* b, int64_t n);

/// o[i] = a[i] * b[i].
void MulOut(float* o, const float* a, const float* b, int64_t n);

/// dst[i] *= s.
void ScaleInPlace(float* dst, float s, int64_t n);

/// dst[i] += s * src[i] (product rounded, then added).
void AxpyInto(float* dst, const float* src, float s, int64_t n);

/// o[i] = max(0, x[i]); NaN maps to 0 like std::max(0.0f, x).
void ReluOut(float* o, const float* x, int64_t n);

/// dst[i] += (x[i] > 0 ? g[i] : 0.0f).
void ReluGradAccum(float* dst, const float* g, const float* x, int64_t n);

// ---------------------------------------------------- GEMM row-chunk kernels

/// Output rows [i0, i1) of A(m×k) @ B(k×n) into O (row-major, pre-zeroed
/// rows are fully owned by this call and overwritten).
void GemmRowChunk(const float* A, const float* B, float* O, int64_t i0,
                  int64_t i1, int64_t k, int64_t n);

/// Same contract as GemmRowChunk, reading B from the PackB panel layout.
/// Bit-identical to the unpacked kernel (packing only relocates bytes).
void GemmPackedRowChunk(const float* A, const float* packed_b, float* O,
                        int64_t i0, int64_t i1, int64_t k, int64_t n);

/// Output rows [i0, i1) of A(m×k) @ B(n×k)^T into O(m×n);
/// O[i][j] = LaneDot(A row i, B row j, k).
void GemmBTRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t k, int64_t n);

/// Output rows [i0, i1) of A(k×m)^T @ B(k×n) into O(m×n). O rows in the
/// chunk must be pre-zeroed; accumulation sweeps p ascending (p outermost,
/// streaming one row of A and B per pass).
void GemmATRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t m, int64_t k, int64_t n);

// ------------------------------------------------------------ B packing

/// Width of one packed column panel.
constexpr int64_t kPanelWidth = 16;

/// Floats needed to pack a k×n matrix: k * n rounded up to whole panels.
int64_t PackedSize(int64_t k, int64_t n);

/// Packs row-major B(k×n) into column panels of kPanelWidth: panel jp
/// stores rows p=0..k-1 of columns [jp*16, jp*16+16) contiguously,
/// zero-padding the last panel. Output must hold PackedSize(k, n) floats.
void PackB(const float* B, int64_t k, int64_t n, float* packed);

// ------------------------------------------------- low-precision kernels
//
// Quantized/bf16 storage paths for the million-node regime. Same
// bit-identity discipline as the fp32 kernels:
//
//  - int8 GEMM accumulates in **exact int32 arithmetic** (|q| <= 127, so
//    k * 127^2 < 2^31 for k <= kInt8MaxK), making the accumulation order
//    irrelevant — the AVX2 madd path and the scalar twin agree trivially.
//    The dequant step is contractual: O[i][j] = (sa[i]*sb[j]) rounded
//    once, then multiplied by float(acc) (int32→float is exact RNE in
//    both builds).
//  - bf16 GEMM expands bf16→fp32 exactly (bit shift) and then follows the
//    fp32 ascending-p mul-then-add contract.
//  - Quantize/encode helpers are shared scalar code, compiled identically
//    in both builds.

/// Largest inner dimension for which the int8 accumulator cannot overflow
/// int32 (k * 127 * 127 < 2^31).
constexpr int64_t kInt8MaxK = (int64_t{1} << 31) / (127 * 127) - 1;

/// Symmetric per-row quantization of one row: scale = max|x| / 127,
/// q[i] = clamp(lrintf(x[i] * (127 / max|x|)), -127, 127) (round to
/// nearest, ties to even — the default rounding mode). An all-zero row gets
/// scale = 0 and all-zero codes (dequantizes to exact zeros). Inputs must
/// be finite — callers validate; see QuantizedTensor::FromTensor.
void QuantizeRowRef(const float* x, int64_t n, int8_t* q, float* scale);

/// bf16 round-to-nearest-even truncation of an fp32 value; NaN is quieted
/// to a canonical bf16 NaN so the conversion is total.
uint16_t Bf16FromF32(float x);

/// Exact bf16 → fp32 expansion (bit shift; no rounding).
float F32FromBf16(uint16_t h);

/// int16 units needed to pack an int8 k×n matrix for Int8GemmPackedRowChunk:
/// whole 16-column panels over k rounded up to an even count.
int64_t PackedSizeInt8(int64_t k, int64_t n);

/// Packs int8 B(k×n) into pre-widened int16 panels of kPanelWidth columns.
/// Panel jp covers columns [jp*16, jp*16+16); within a panel, inner-dim
/// pairs kp cover rows {2kp, 2kp+1} (the last pair zero-padded when k is
/// odd), stored column-interleaved: packed[jp*16*k_pad + kp*32 + 2*j + e]
/// = B[2kp+e][jp*16+j]. This is exactly the operand order the AVX2
/// madd_epi16 path consumes; the scalar twin reads the same layout.
void PackBInt8(const int8_t* B, int64_t k, int64_t n, int16_t* packed);

/// Output rows [i0, i1) of the int8 GEMM with fused dequantization:
/// O[i][j] = (a_scales[i] * b_scales[j]) * float(sum_p qa[i][p]*qb[p][j]).
/// A16 is the row-major activation matrix pre-widened to int16 with rows
/// zero-padded to k_pad = k rounded up to even; packed_b is the
/// PackBInt8 layout. Integer accumulation is exact, so the result is
/// bit-identical across builds and thread counts by construction.
void Int8GemmPackedRowChunk(const int16_t* A16, const float* a_scales,
                            const int16_t* packed_b, const float* b_scales,
                            float* O, int64_t i0, int64_t i1, int64_t k,
                            int64_t n);

/// Output rows [i0, i1) of A(m×k, fp32) @ B16(k×n, bf16): each B element
/// is expanded to fp32 exactly, then the fp32 GEMM contract applies
/// (round(a*b) then add, ascending p).
void Bf16GemmRowChunk(const float* A, const uint16_t* B16, float* O,
                      int64_t i0, int64_t i1, int64_t k, int64_t n);

// ----------------------------------------------------- dot-product contract

/// The MatMulBT per-output contract: eight float lane sums over k,
/// fixed-tree combine, ascending tail. Exposed so tests can pin the SIMD
/// build against a plain-C++ reference bit for bit.
float LaneDot(const float* a, const float* b, int64_t k);

// ------------------------------------------------------------- softmax rows

/// Shared exp polynomial (Cephes-style, float, ~2 ulp); the AVX2 lane
/// version applies the identical operation sequence.
float ExpRef(float x);

/// out[i] = ExpRef(x[i] - shift).
void ExpShiftedRow(float* out, const float* x, float shift, int64_t n);

/// Max entry of x (n >= 1); ties and -0/+0 resolve identically in both
/// builds; all-finite inputs are order-independent.
float RowMax(const float* x, int64_t n);

}  // namespace kern
}  // namespace relgraph

#endif  // RELGRAPH_TENSOR_SIMD_KERNELS_H_

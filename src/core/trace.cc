#include "core/trace.h"

#include <time.h>

#include <atomic>
#include <chrono>
#include <mutex>

#include "core/atomic_io.h"
#include "core/metrics.h"
#include "core/string_util.h"

namespace relgraph {

namespace {

thread_local int64_t t_current_span = -1;

/// Dense thread index: the first thread to open a span gets 0 (in
/// practice the main thread), pool workers get 1, 2, ... in first-span
/// order.
int ThreadIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

double ThreadCpuUs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

constexpr size_t kDefaultCapacity = 1 << 16;

/// Monotonic microseconds since the first call (process trace epoch).
/// A process-constant epoch keeps reads race-free under TSan even while
/// Reset() runs concurrently.
double ProcessNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::string FormatUs(double us, bool include_timings) {
  return StrFormat("%.3f", include_timings ? us : 0.0);
}

}  // namespace

struct TraceCollector::Impl {
  mutable std::mutex mu;
  std::vector<TraceSpanRecord> spans;
  size_t capacity = kDefaultCapacity;
  /// start_us values are relative to this offset (moved by Reset so a
  /// fresh trace starts near zero). Only written under mu.
  double epoch_us = 0.0;
};

TraceCollector::TraceCollector() : impl_(new Impl()) {}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

int64_t TraceCollector::CurrentSpanId() { return t_current_span; }

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans.size();
}

std::vector<TraceSpanRecord> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans;
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->spans.clear();
  impl_->epoch_us = ProcessNowUs();
}

void TraceCollector::SetCapacityForTesting(size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = capacity;
}

int64_t TraceCollector::Begin(std::string_view name, int64_t parent) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->spans.size() >= impl_->capacity) {
    RELGRAPH_COUNTER_INC("trace_spans_dropped_total");
    return -1;
  }
  TraceSpanRecord rec;
  rec.id = static_cast<int64_t>(impl_->spans.size());
  rec.parent = parent;
  rec.name = std::string(name);
  rec.start_us = ProcessNowUs() - impl_->epoch_us;
  rec.thread = ThreadIndex();
  impl_->spans.push_back(std::move(rec));
  return impl_->spans.back().id;
}

void TraceCollector::End(int64_t id, double wall_us, double cpu_us) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (id < 0 || id >= static_cast<int64_t>(impl_->spans.size())) return;
  TraceSpanRecord& rec = impl_->spans[static_cast<size_t>(id)];
  rec.wall_us = wall_us;
  rec.cpu_us = cpu_us;
  rec.closed = true;
}

namespace {

void AppendSpanJson(const std::vector<TraceSpanRecord>& spans,
                    const std::vector<std::vector<int64_t>>& children,
                    int64_t id, int depth, bool include_timings,
                    std::string* out) {
  const TraceSpanRecord& s = spans[static_cast<size_t>(id)];
  const std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
  *out += pad + StrFormat(
                    "{\"name\": \"%s\", \"thread\": %d, \"start_us\": %s, "
                    "\"wall_us\": %s, \"cpu_us\": %s",
                    s.name.c_str(), s.thread,
                    FormatUs(s.start_us, include_timings).c_str(),
                    FormatUs(s.wall_us, include_timings).c_str(),
                    FormatUs(s.cpu_us, include_timings).c_str());
  const auto& kids = children[static_cast<size_t>(id)];
  if (kids.empty()) {
    *out += "}";
    return;
  }
  *out += ", \"children\": [\n";
  for (size_t i = 0; i < kids.size(); ++i) {
    AppendSpanJson(spans, children, kids[i], depth + 1, include_timings,
                   out);
    if (i + 1 < kids.size()) *out += ",";
    *out += "\n";
  }
  *out += pad + "]}";
}

void AppendSpanText(const std::vector<TraceSpanRecord>& spans,
                    const std::vector<std::vector<int64_t>>& children,
                    int64_t id, int depth, std::string* out) {
  const TraceSpanRecord& s = spans[static_cast<size_t>(id)];
  *out += std::string(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%s  wall %.3fms cpu %.3fms (thread %d)\n",
                    s.name.c_str(), s.wall_us / 1000.0, s.cpu_us / 1000.0,
                    s.thread);
  for (int64_t kid : children[static_cast<size_t>(id)]) {
    AppendSpanText(spans, children, kid, depth + 1, out);
  }
}

}  // namespace

std::string TraceCollector::DumpJson(bool include_timings) const {
  const std::vector<TraceSpanRecord> spans = Snapshot();
  std::vector<std::vector<int64_t>> children(spans.size());
  std::vector<int64_t> roots;
  for (const TraceSpanRecord& s : spans) {
    // Spans arrive in id order; a parent id always precedes its children.
    if (s.parent >= 0 && s.parent < static_cast<int64_t>(spans.size())) {
      children[static_cast<size_t>(s.parent)].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }
  std::string out = "{\n\"spans\": [";
  for (size_t i = 0; i < roots.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendSpanJson(spans, children, roots[i], 0, include_timings, &out);
  }
  out += roots.empty() ? "]\n}\n" : "\n]\n}\n";
  return out;
}

std::string TraceCollector::DumpText() const {
  const std::vector<TraceSpanRecord> spans = Snapshot();
  std::vector<std::vector<int64_t>> children(spans.size());
  std::vector<int64_t> roots;
  for (const TraceSpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<int64_t>(spans.size())) {
      children[static_cast<size_t>(s.parent)].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }
  std::string out;
  for (int64_t root : roots) {
    AppendSpanText(spans, children, root, 0, &out);
  }
  return out;
}

std::string DumpTraceJson(bool include_timings) {
  return TraceCollector::Global().DumpJson(include_timings);
}

std::string DumpTraceText() { return TraceCollector::Global().DumpText(); }

Status WriteTraceJson(const std::string& path, bool include_timings) {
  return AtomicWriteFile(path, DumpTraceJson(include_timings));
}

// ------------------------------------------------------------- TraceSpan

TraceSpan::TraceSpan(std::string_view name) {
  if (!MetricsEnabled()) return;
  Open(name, t_current_span);
}

TraceSpan::TraceSpan(std::string_view name, int64_t parent_id) {
  if (!MetricsEnabled()) return;
  Open(name, parent_id);
}

void TraceSpan::Open(std::string_view name, int64_t parent) {
  TraceCollector& collector = TraceCollector::Global();
  saved_current_ = t_current_span;
  id_ = collector.Begin(name, parent);
  if (id_ < 0) return;  // dropped: children attach to the saved parent
  t_current_span = id_;
  start_wall_us_ = ProcessNowUs();
  start_cpu_us_ = ThreadCpuUs();
}

TraceSpan::~TraceSpan() {
  if (id_ < 0) return;
  TraceCollector& collector = TraceCollector::Global();
  const double wall = ProcessNowUs() - start_wall_us_;
  const double cpu = ThreadCpuUs() - start_cpu_us_;
  collector.End(id_, wall < 0 ? 0.0 : wall, cpu < 0 ? 0.0 : cpu);
  t_current_span = saved_current_;
}

}  // namespace relgraph

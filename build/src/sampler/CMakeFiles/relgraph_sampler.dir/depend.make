# Empty dependencies file for relgraph_sampler.
# This may be replaced when dependencies are built.

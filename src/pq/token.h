#ifndef RELGRAPH_PQ_TOKEN_H_
#define RELGRAPH_PQ_TOKEN_H_

#include <cstdint>
#include <string>

namespace relgraph {

/// Token kinds of the predictive-query language.
enum class TokenKind {
  kIdent,     ///< identifier or (case-insensitive) keyword
  kNumber,    ///< integer or decimal literal
  kString,    ///< single-quoted string literal
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kEq,        ///< =
  kNe,        ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

/// One lexed token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< raw text (identifier/keyword/literal)
  double number = 0;  ///< value for kNumber
  int position = 0;   ///< byte offset in the query string

  /// Case-insensitive keyword check for kIdent tokens.
  bool Is(const char* keyword) const;
};

/// Name of a token kind (diagnostics).
const char* TokenKindName(TokenKind kind);

}  // namespace relgraph

#endif  // RELGRAPH_PQ_TOKEN_H_

#include "relational/database.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/logging.h"
#include "core/string_util.h"

namespace relgraph {

Result<Table*> Database::AddTable(TableSchema schema) {
  RELGRAPH_RETURN_IF_ERROR(schema.Validate());
  if (index_.count(schema.name())) {
    return Status::AlreadyExists("table '" + schema.name() +
                                 "' already in database");
  }
  for (const auto& fk : schema.foreign_keys()) {
    // Self-references are allowed (e.g. employee.manager_id), as are
    // forward references resolved at Validate() time; only record here.
    (void)fk;
  }
  index_[schema.name()] = tables_.size();
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return tables_.back().get();
}

const Table* Database::FindTable(const std::string& table_name) const {
  auto it = index_.find(table_name);
  return it == index_.end() ? nullptr : tables_[it->second].get();
}

Table* Database::FindMutableTable(const std::string& table_name) {
  auto it = index_.find(table_name);
  return it == index_.end() ? nullptr : tables_[it->second].get();
}

const Table& Database::table(const std::string& table_name) const {
  const Table* t = FindTable(table_name);
  RELGRAPH_CHECK(t != nullptr) << "no table '" << table_name
                               << "' in database '" << name_ << "'";
  return *t;
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

Status Database::Validate() const {
  for (const auto& t : tables_) {
    RELGRAPH_RETURN_IF_ERROR(t->schema().Validate());
    RELGRAPH_RETURN_IF_ERROR(t->ValidatePrimaryKey());
  }
  for (const auto& t : tables_) {
    for (const auto& fk : t->schema().foreign_keys()) {
      const Table* target = FindTable(fk.referenced_table);
      if (target == nullptr) {
        return Status::InvalidArgument(StrFormat(
            "table '%s' FK '%s' references unknown table '%s'",
            t->name().c_str(), fk.column.c_str(),
            fk.referenced_table.c_str()));
      }
      if (!target->schema().primary_key()) {
        return Status::InvalidArgument(StrFormat(
            "table '%s' FK '%s' references table '%s' without a PK",
            t->name().c_str(), fk.column.c_str(),
            fk.referenced_table.c_str()));
      }
      const Column& col = t->column(fk.column);
      for (int64_t r = 0; r < t->num_rows(); ++r) {
        if (col.IsNull(r)) continue;
        if (!target->FindByPrimaryKey(col.Int(r)).ok()) {
          return Status::InvalidArgument(StrFormat(
              "table '%s' row %lld: FK %s=%lld has no match in '%s'",
              t->name().c_str(), static_cast<long long>(r),
              fk.column.c_str(), static_cast<long long>(col.Int(r)),
              fk.referenced_table.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

DatabaseIntegrityReport Database::Audit(int64_t max_examples) const {
  DatabaseIntegrityReport report;
  for (const auto& t : tables_) {
    TableIngestReport tr;
    tr.table = t->name();
    tr.rows_loaded = t->num_rows();
    auto example = [&tr, max_examples](int64_t row, const std::string& col,
                                       std::string reason) {
      if (static_cast<int64_t>(tr.examples.size()) < max_examples) {
        tr.examples.push_back({row + 1, col, std::move(reason)});
      }
    };
    if (t->schema().primary_key()) {
      const Column& pk = t->column(*t->schema().primary_key());
      std::unordered_map<int64_t, int64_t> seen;
      for (int64_t r = 0; r < t->num_rows(); ++r) {
        if (pk.IsNull(r)) {
          ++tr.null_pks;
          example(r, pk.name(), "null primary key");
          continue;
        }
        auto [it, inserted] = seen.emplace(pk.Int(r), r);
        if (!inserted) {
          ++tr.duplicate_pks;
          example(r, pk.name(),
                  StrFormat("duplicate primary key %lld (first at row %lld)",
                            static_cast<long long>(pk.Int(r)),
                            static_cast<long long>(it->second + 1)));
        }
      }
    }
    for (const auto& fk : t->schema().foreign_keys()) {
      const Table* target = FindTable(fk.referenced_table);
      if (target == nullptr || !target->schema().primary_key()) continue;
      const Column& col = t->column(fk.column);
      for (int64_t r = 0; r < t->num_rows(); ++r) {
        if (col.IsNull(r)) continue;
        if (!target->FindByPrimaryKey(col.Int(r)).ok()) {
          ++tr.dangling_fks;
          example(r, fk.column,
                  StrFormat("FK %s=%lld has no match in '%s'",
                            fk.column.c_str(),
                            static_cast<long long>(col.Int(r)),
                            fk.referenced_table.c_str()));
        }
      }
    }
    if (tr.TotalIssues() > 0) report.tables.push_back(std::move(tr));
  }
  return report;
}

namespace {

/// Per-table validation state threaded through one ApplyAppend batch:
/// what earlier accepted rows of the batch introduced, so later rows can
/// resolve against them.
struct PendingTable {
  std::unordered_set<int64_t> pks;  ///< PKs of earlier accepted batch rows
  int64_t accepted = 0;
  Timestamp last_time = kNoTimestamp;  ///< last accepted event time
};

}  // namespace

Result<AppendOutcome> Database::ApplyAppend(const AppendBatch& batch,
                                            const IngestOptions& options) {
  AppendOutcome outcome;
  std::map<std::string, TableIngestReport> table_reports;
  std::map<std::string, PendingTable> pending;
  std::vector<size_t> accepted_rows;
  accepted_rows.reserve(batch.rows.size());

  const bool lenient = options.mode == IngestMode::kLenient;

  // ------------------------------------------------------------- pass 1
  // Validate every row in batch order without touching any table. A row is
  // classified by its FIRST failing check; strict mode aborts right there
  // (nothing has been applied yet), lenient mode quarantines and moves on.
  for (size_t i = 0; i < batch.rows.size(); ++i) {
    const RowAppend& row = batch.rows[i];
    const int64_t batch_row = static_cast<int64_t>(i) + 1;  // 1-based

    const Table* t = FindTable(row.table);
    if (t == nullptr) {
      return Status::InvalidArgument(StrFormat(
          "append row %lld: unknown table '%s'",
          static_cast<long long>(batch_row), row.table.c_str()));
    }
    const TableSchema& schema = t->schema();
    const auto& cols = schema.columns();
    PendingTable& pend = pending[row.table];
    if (pend.accepted == 0 && pend.last_time == kNoTimestamp &&
        schema.time_column() && t->num_rows() > 0) {
      pend.last_time = t->RowTime(t->num_rows() - 1);
    }

    std::string bad_column;
    std::string reason;
    int64_t TableIngestReport::*category = nullptr;

    if (row.values.size() != cols.size()) {
      category = &TableIngestReport::malformed_cells;
      reason = StrFormat("row has %zu values, expected %zu",
                         row.values.size(), cols.size());
    }

    // Per-cell checks: type probes and null handling, in column order.
    for (size_t c = 0; category == nullptr && c < cols.size(); ++c) {
      const Value& v = row.values[c];
      const bool is_pk =
          schema.primary_key() && cols[c].name == *schema.primary_key();
      if (v.is_null()) {
        if (is_pk) {
          category = &TableIngestReport::null_pks;
          bad_column = cols[c].name;
          reason = "null primary key";
        } else if (!cols[c].nullable) {
          category = &TableIngestReport::constraint_violations;
          bad_column = cols[c].name;
          reason = "null in non-nullable column";
        }
        continue;
      }
      Column probe(cols[c].name, cols[c].type);
      Status st = probe.Append(v);
      if (!st.ok()) {
        category = &TableIngestReport::malformed_cells;
        bad_column = cols[c].name;
        reason = st.message();
      }
    }

    // PK uniqueness vs the base table plus earlier accepted batch rows.
    int64_t pk_value = 0;
    bool has_pk = false;
    if (category == nullptr && schema.primary_key()) {
      const int pk_col = schema.FindColumn(*schema.primary_key()).value();
      pk_value = row.values[static_cast<size_t>(pk_col)].as_int();
      has_pk = true;
      if (t->FindByPrimaryKey(pk_value).ok() || pend.pks.count(pk_value)) {
        category = &TableIngestReport::duplicate_pks;
        bad_column = *schema.primary_key();
        reason = StrFormat("duplicate primary key %lld",
                           static_cast<long long>(pk_value));
      }
    }

    // FK resolution vs the base target table plus earlier accepted batch
    // rows of the target. Rows quarantined earlier never enter the pending
    // set, so an FK pointing at one of them dangles — as does a forward
    // reference to a row later in the batch.
    if (category == nullptr) {
      for (const ForeignKey& fk : schema.foreign_keys()) {
        const int fk_col = schema.FindColumn(fk.column).value();
        const Value& v = row.values[static_cast<size_t>(fk_col)];
        if (v.is_null()) continue;
        const Table* target = FindTable(fk.referenced_table);
        if (target == nullptr || !target->schema().primary_key()) continue;
        const int64_t ref = v.as_int();
        auto pit = pending.find(fk.referenced_table);
        const bool in_pending =
            pit != pending.end() && pit->second.pks.count(ref) > 0;
        if (!target->FindByPrimaryKey(ref).ok() && !in_pending) {
          category = &TableIngestReport::dangling_fks;
          bad_column = fk.column;
          reason = StrFormat("FK %s=%lld has no match in '%s'",
                             fk.column.c_str(), static_cast<long long>(ref),
                             fk.referenced_table.c_str());
          break;
        }
      }
    }

    // Event-time plausibility and (optional) monotonicity.
    // Only rows that passed the arity and per-cell probes have a safely
    // readable time cell (a malformed row may be short or mistyped).
    Timestamp row_time = kNoTimestamp;
    if (category == nullptr && schema.time_column()) {
      const int time_col = schema.FindColumn(*schema.time_column()).value();
      const Value& v = row.values[static_cast<size_t>(time_col)];
      if (!v.is_null()) row_time = v.as_time();
    }
    if (category == nullptr && row_time != kNoTimestamp) {
      if (options.min_timestamp != kNoTimestamp &&
          row_time < options.min_timestamp) {
        category = &TableIngestReport::out_of_range_timestamps;
        bad_column = *schema.time_column();
        reason = StrFormat("timestamp %lld below minimum %lld",
                           static_cast<long long>(row_time),
                           static_cast<long long>(options.min_timestamp));
      } else if (options.max_timestamp != kNoTimestamp &&
                 row_time > options.max_timestamp) {
        category = &TableIngestReport::out_of_range_timestamps;
        bad_column = *schema.time_column();
        reason = StrFormat("timestamp %lld above maximum %lld",
                           static_cast<long long>(row_time),
                           static_cast<long long>(options.max_timestamp));
      } else if (options.require_monotonic_time &&
                 pend.last_time != kNoTimestamp &&
                 row_time < pend.last_time) {
        category = &TableIngestReport::out_of_order_timestamps;
        bad_column = *schema.time_column();
        reason = StrFormat("timestamp %lld precedes previous row's %lld",
                           static_cast<long long>(row_time),
                           static_cast<long long>(pend.last_time));
      }
    }

    if (category != nullptr) {
      if (!lenient) {
        return Status::InvalidArgument(StrFormat(
            "append row %lld, table '%s'%s%s: %s",
            static_cast<long long>(batch_row), row.table.c_str(),
            bad_column.empty() ? "" : ", column ", bad_column.c_str(),
            reason.c_str()));
      }
      TableIngestReport& tr = table_reports[row.table];
      tr.table = row.table;
      ++(tr.*category);
      ++tr.rows_quarantined;
      ++outcome.rows_quarantined;
      if (static_cast<int64_t>(tr.examples.size()) < options.max_examples) {
        tr.examples.push_back({batch_row, bad_column, std::move(reason)});
      }
      continue;
    }

    accepted_rows.push_back(i);
    ++pend.accepted;
    if (has_pk) pend.pks.insert(pk_value);
    if (row_time != kNoTimestamp) pend.last_time = row_time;
  }

  // ------------------------------------------------------------- pass 2
  // Apply accepted rows in batch order. Each append was fully validated
  // above, so a failure here would leave ragged state — treat it as fatal.
  for (size_t i : accepted_rows) {
    const RowAppend& row = batch.rows[i];
    Table* t = FindMutableTable(row.table);
    const int64_t landed = t->num_rows();
    Status st = t->AppendRow(row.values);
    RELGRAPH_CHECK(st.ok()) << "validated append failed: " << st.ToString();
    auto [it, inserted] =
        outcome.applied_ranges.emplace(row.table, std::make_pair(landed,
                                                                 landed + 1));
    if (!inserted) it->second.second = landed + 1;
    append_log_.push_back(
        {++append_seq_, row.table, landed, t->RowTime(landed)});
    ++outcome.rows_applied;
  }

  // Emit per-table reports in database registration order so the outcome
  // (and its JSON rendering) is deterministic.
  for (const auto& t : tables_) {
    auto it = table_reports.find(t->name());
    if (it == table_reports.end()) continue;
    auto pit = pending.find(t->name());
    it->second.rows_loaded = pit == pending.end() ? 0 : pit->second.accepted;
    if (it->second.TotalIssues() > 0) {
      outcome.report.tables.push_back(std::move(it->second));
    }
  }
  return outcome;
}

std::pair<Timestamp, Timestamp> Database::TimeRange() const {
  Timestamp lo = kNoTimestamp, hi = kNoTimestamp;
  for (const auto& t : tables_) {
    if (!t->schema().time_column()) continue;
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      Timestamp ts = t->RowTime(r);
      if (ts == kNoTimestamp) continue;
      if (lo == kNoTimestamp || ts < lo) lo = ts;
      if (hi == kNoTimestamp || ts > hi) hi = ts;
    }
  }
  return {lo, hi};
}

std::string Database::DescribeSchema() const {
  std::string out = "database " + (name_.empty() ? "<anon>" : name_) + "\n";
  for (const auto& t : tables_) {
    out += StrFormat("  %s  [%lld rows]\n", t->schema().ToString().c_str(),
                     static_cast<long long>(t->num_rows()));
  }
  return out;
}

}  // namespace relgraph

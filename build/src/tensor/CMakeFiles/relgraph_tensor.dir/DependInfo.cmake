
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/autograd.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/autograd.cc.o.d"
  "/root/repo/src/tensor/init.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/init.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/init.cc.o.d"
  "/root/repo/src/tensor/nn.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/nn.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/nn.cc.o.d"
  "/root/repo/src/tensor/optim.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/optim.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/optim.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/serialize.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/serialize.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/relgraph_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/relgraph_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/relgraph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

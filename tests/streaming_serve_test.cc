// Serving-side differential harness for streaming ingestion: an engine fed
// incremental graph epochs through InferenceEngine::ApplyDelta must score
// bit-identically (exact doubles) to an engine built from a from-scratch
// batch rebuild at the same cutoff — caches on and off, at 1 and 4
// threads, through concurrent score/append interleavings, and across the
// fault-injection recovery paths. Also pins the cache-invalidation
// precision fix: a same-cutoff delta keeps warm entries whose sampled
// neighborhoods are untouched, instead of clearing the world.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/fault_injection.h"
#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "db2graph/streaming.h"
#include "pq/engine.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "relational/append_log.h"
#include "sampler/neighbor_sampler.h"
#include "serve/inference_engine.h"
#include "train/trainer.h"

namespace relgraph {
namespace {

constexpr const char* kQuery =
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users";

/// Shared world: one small e-commerce database and one trained checkpoint.
/// Each test makes its own Database copy (by regenerating — generation is
/// bit-reproducible) so appends never leak between tests; the checkpoint
/// is layout-compatible with every streamed epoch because streams freeze
/// the encoder plans fitted on the identical base tables.
class StreamingServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database db = MakeDb();
    auto stream = StreamingDbGraph::Create(&db).value();
    // Train on the stream's own oracle build so the checkpoint matches
    // the frozen-plan feature layout exactly.
    dbg_ = new DbGraph(BuildDbGraph(db, stream->RebuildOptions()).value());
    users_ = dbg_->graph.FindNodeType("users").value();
    now_ = db.TimeRange().second + 1;

    auto rq = AnalyzeQuery(ParseQuery(kQuery).value(), db).value();
    auto cutoffs = MakeCutoffs(rq, db).value();
    auto table = BuildTrainingTable(rq, db, cutoffs).value();
    auto split = MakeSplit(rq, table, cutoffs).value();
    TrainerConfig tc;
    tc.epochs = 2;
    tc.seed = 3;
    GnnNodePredictor trainer(&dbg_->graph, users_,
                             TaskKind::kBinaryClassification, 2, Gnn(),
                             Sampler(), tc);
    ASSERT_TRUE(trainer.Fit(table, split).ok());
    ckpt_path_ = ::testing::TempDir() + "/streaming_serve_test." +
                 std::to_string(getpid()) + ".ckpt";
    ASSERT_TRUE(trainer.SaveWeights(ckpt_path_).ok());
  }

  static void TearDownTestSuite() {
    std::remove(ckpt_path_.c_str());
    delete dbg_;
    dbg_ = nullptr;
  }

  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  static Database MakeDb() {
    ECommerceConfig cfg;
    cfg.num_users = 60;
    cfg.num_products = 20;
    cfg.num_categories = 4;
    cfg.horizon_days = 120;
    return MakeECommerceDb(cfg);
  }

  static GnnConfig Gnn() {
    GnnConfig gnn;
    gnn.hidden_dim = 16;
    gnn.num_layers = 2;
    return gnn;
  }

  static SamplerOptions Sampler() {
    SamplerOptions sopts;
    sopts.fanouts = {4, 4};
    sopts.policy = SamplePolicy::kMostRecent;
    return sopts;
  }

  /// A loaded engine over `graph` at cutoff `now` (shared checkpoint).
  static std::unique_ptr<InferenceEngine> MakeEngine(
      const HeteroGraph* graph, Timestamp now, const ServeOptions& serve) {
    auto engine = std::make_unique<InferenceEngine>(
        graph, users_, TaskKind::kBinaryClassification, 2, Gnn(), Sampler(),
        now, serve);
    EXPECT_TRUE(engine->LoadCheckpoint(ckpt_path_).ok());
    return engine;
  }

  /// Epoch-owning variant for stream-published graphs: the engine keeps
  /// the epoch alive even after the stream publishes a newer one.
  static std::unique_ptr<InferenceEngine> MakeEngine(
      std::shared_ptr<const HeteroGraph> graph, Timestamp now,
      const ServeOptions& serve) {
    auto engine = std::make_unique<InferenceEngine>(
        std::move(graph), users_, TaskKind::kBinaryClassification, 2, Gnn(),
        Sampler(), now, serve);
    EXPECT_TRUE(engine->LoadCheckpoint(ckpt_path_).ok());
    return engine;
  }

  /// Appends `n` orders at `ts` from consecutive existing users, starting
  /// a fresh PK range above anything the generator produced.
  static AppendBatch OrderAppends(const Database& db, int64_t n,
                                  Timestamp ts, int64_t first_user = 0) {
    const int64_t next_id = db.table("orders").num_rows() + 1000000;
    const int64_t num_users = db.table("users").num_rows();
    const int64_t num_products = db.table("products").num_rows();
    AppendBatch batch;
    for (int64_t i = 0; i < n; ++i) {
      // Generator PKs are 1-based; node id = PK - 1.
      const int64_t user_pk = (first_user + i) % num_users + 1;
      const int64_t product_pk = i % num_products + 1;
      batch.Add("orders",
                {Value(next_id + i), Value(user_pk), Value(product_pk),
                 Value::Time(ts), Value(int64_t{1}), Value(9.5),
                 Value(9.5)});
    }
    return batch;
  }

  /// Appends `n` brand-new users (touches no existing adjacency).
  static AppendBatch UserAppends(const Database& db, int64_t n) {
    const int64_t next_id = db.table("users").num_rows() + 1000000;
    AppendBatch batch;
    for (int64_t i = 0; i < n; ++i) {
      batch.Add("users", {Value(next_id + i), Value("be"), Value(35.0),
                          Value(i % 2 == 0)});
    }
    return batch;
  }

  static DbGraph* dbg_;
  static NodeTypeId users_;
  static Timestamp now_;
  static std::string ckpt_path_;
};

DbGraph* StreamingServeTest::dbg_ = nullptr;
NodeTypeId StreamingServeTest::users_ = 0;
Timestamp StreamingServeTest::now_ = 0;
std::string StreamingServeTest::ckpt_path_;

std::vector<int64_t> SomeUsers() {
  return {0, 7, 13, 13, 21, 34, 55, 2, 40, 59};
}

void ExpectScoresExactlyEqual(const std::vector<double>& got,
                              const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "score " << i;  // exact doubles
  }
}

// --------------------------------------------------- the differential gate

TEST_F(StreamingServeTest, ScoresBitIdenticalIncrementalVsRebuilt) {
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();

  std::vector<ServeOptions> configs;
  {
    ServeOptions both;
    configs.push_back(both);
    ServeOptions none;
    none.enable_subgraph_cache = false;
    none.enable_embedding_cache = false;
    configs.push_back(none);
  }

  for (size_t c = 0; c < configs.size(); ++c) {
    SCOPED_TRACE("config " + std::to_string(c));
    // Fresh world per config so cache state never leaks across configs.
    Database db_inc = MakeDb();
    auto s = StreamingDbGraph::Create(&db_inc).value();
    auto incremental = MakeEngine(s->graph(), now_, configs[c]);

    // Warm the incremental engine pre-delta, then stream three batches
    // (orders before the cutoff, so they change real neighborhoods, plus
    // new users) and publish each epoch through ApplyDelta.
    ASSERT_TRUE(incremental->Score(SomeUsers()).ok());
    for (int64_t round = 0; round < 3; ++round) {
      AppendBatch batch = OrderAppends(db_inc, 6, now_ - 1 - round,
                                       /*first_user=*/round * 11);
      for (auto& row : UserAppends(db_inc, 2).rows) {
        batch.rows.push_back(row);
      }
      auto result = s->Apply(batch);
      ASSERT_TRUE(result.ok()) << result.status().message();
      ASSERT_EQ(result.value().outcome.rows_quarantined, 0);
      ASSERT_TRUE(incremental
                      ->ApplyDelta(result.value().graph, now_,
                                   result.value().delta)
                      .ok());
    }

    // The oracle: a from-scratch batch build of the SAME grown database
    // under the stream's frozen plans, served by a fresh engine.
    auto rebuilt = BuildDbGraph(db_inc, s->RebuildOptions()).value();
    auto reference = MakeEngine(&rebuilt.graph, now_, configs[c]);

    // Score ids spanning old and brand-new users.
    std::vector<int64_t> ids = SomeUsers();
    ids.push_back(rebuilt.graph.num_nodes(users_) - 1);
    ids.push_back(rebuilt.graph.num_nodes(users_) - 3);

    auto want = reference->Score(ids);
    ASSERT_TRUE(want.ok());
    // 1 thread.
    auto got = incremental->Score(ids);
    ASSERT_TRUE(got.ok());
    ExpectScoresExactlyEqual(got.value(), want.value());
    // Scoring again through warm caches changes nothing.
    ExpectScoresExactlyEqual(incremental->Score(ids).value(), want.value());

    // 4 threads, disjoint slices, against the same reference.
    std::vector<std::thread> threads;
    std::vector<Status> statuses(4, Status::OK());
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int rep = 0; rep < 3; ++rep) {
          auto scores = incremental->Score(ids);
          if (!scores.ok()) {
            statuses[t] = scores.status();
            return;
          }
          for (size_t i = 0; i < ids.size(); ++i) {
            if (scores.value()[i] != want.value()[i]) {
              statuses[t] = Status::Internal("score mismatch under threads");
              return;
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const auto& st : statuses) ASSERT_TRUE(st.ok()) << st.message();
  }
}

// ------------------------------------------------ invalidation precision

TEST_F(StreamingServeTest, NodeOnlyDeltaKeepsEveryWarmEntry) {
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});

  const std::vector<int64_t> ids = SomeUsers();
  ASSERT_TRUE(engine->Score(ids).ok());
  auto before = engine->Score(ids);  // fully warm round
  ASSERT_TRUE(before.ok());
  const ServeStats warm = engine->stats();

  // New users only: no existing node's adjacency changes.
  auto result = stream->Apply(UserAppends(db, 4));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().delta.TotalTouched(), 0);
  ASSERT_TRUE(
      engine->ApplyDelta(result.value().graph, now_, result.value().delta)
          .ok());

  auto after = engine->Score(ids);
  ASSERT_TRUE(after.ok());
  ExpectScoresExactlyEqual(after.value(), before.value());

  // Every entry survived the migration: zero new embedding misses, and no
  // wholesale shard swap happened.
  const ServeStats stats = engine->stats();
  EXPECT_EQ(stats.embedding_misses, warm.embedding_misses);
  EXPECT_GT(stats.embedding_hits, warm.embedding_hits);
  EXPECT_EQ(stats.shard_swaps, warm.shard_swaps);
  EXPECT_EQ(stats.snapshot_version, warm.snapshot_version + 1);
}

TEST_F(StreamingServeTest, DeltaInvalidatesExactlyTheTouchedNeighborhoods) {
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});
  std::shared_ptr<const HeteroGraph> base = stream->graph();

  // Warm every user.
  std::vector<int64_t> all_users;
  for (int64_t u = 0; u < base->num_nodes(users_); ++u) {
    all_users.push_back(u);
  }
  ASSERT_TRUE(engine->Score(all_users).ok());

  // One appended order touches one user and one product.
  auto result = stream->Apply(OrderAppends(db, 1, now_ - 1,
                                           /*first_user=*/5));
  ASSERT_TRUE(result.ok());
  const GraphDelta& delta = result.value().delta;
  ASSERT_GT(delta.TotalTouched(), 0);

  // Predict survival per user with the engine's own sampling stream: an
  // entry survives iff its deepest sampled frontier avoids every touched
  // node (over the OLD epoch — that is what the cache holds).
  NeighborSampler sampler(base.get(), Sampler());
  int64_t expect_invalidated = 0, expect_survived = 0;
  for (int64_t u : all_users) {
    Subgraph sg =
        sampler.SampleForServing(users_, u, now_, engine->serving_salt());
    bool hit = false;
    const auto& deepest = sg.frontiers.back();
    for (size_t t = 0; t < deepest.nodes.size() && !hit; ++t) {
      if (t >= delta.touched.size() || delta.touched[t].empty()) continue;
      std::unordered_set<int64_t> touched(delta.touched[t].begin(),
                                          delta.touched[t].end());
      for (int64_t node : deepest.nodes[t]) {
        if (touched.count(node)) {
          hit = true;
          break;
        }
      }
    }
    (hit ? expect_invalidated : expect_survived) += 1;
  }
  ASSERT_GT(expect_invalidated, 0);  // the touched user itself at least
  ASSERT_GT(expect_survived, 0);     // precision: most of the world is far

  const ServeStats warm = engine->stats();
  ASSERT_TRUE(
      engine->ApplyDelta(result.value().graph, now_, delta).ok());
  auto rescored = engine->Score(all_users);
  ASSERT_TRUE(rescored.ok());

  // Exactly the predicted entries re-missed; everything else stayed warm.
  const ServeStats stats = engine->stats();
  EXPECT_EQ(stats.embedding_misses - warm.embedding_misses,
            expect_invalidated);
  EXPECT_EQ(stats.embedding_hits - warm.embedding_hits, expect_survived);
  EXPECT_EQ(stats.shard_swaps, warm.shard_swaps);

  // And the refreshed world matches the from-scratch oracle exactly.
  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  auto reference = MakeEngine(&rebuilt.graph, now_, ServeOptions{});
  ExpectScoresExactlyEqual(rescored.value(),
                           reference->Score(all_users).value());
}

TEST_F(StreamingServeTest, CutoffAdvanceSwapsWholesale) {
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});

  const std::vector<int64_t> ids = SomeUsers();
  ASSERT_TRUE(engine->Score(ids).ok());
  const ServeStats warm = engine->stats();

  auto result = stream->Apply(UserAppends(db, 1));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(engine
                  ->ApplyDelta(result.value().graph, now_ + 1,
                               result.value().delta)
                  .ok());

  // A moved cutoff changes every sampling stream: nothing is reusable.
  auto rescored = engine->Score(ids);
  ASSERT_TRUE(rescored.ok());
  const ServeStats stats = engine->stats();
  EXPECT_EQ(stats.shard_swaps, warm.shard_swaps + 1);
  EXPECT_GT(stats.embedding_misses, warm.embedding_misses);

  auto reference =
      MakeEngine(result.value().graph, now_ + 1, ServeOptions{});
  ExpectScoresExactlyEqual(rescored.value(),
                           reference->Score(ids).value());
}

TEST_F(StreamingServeTest, BrokenDeltaChainFallsBackToWholesaleSwap) {
  // An engine that missed an epoch (e.g. its publish failed) and then
  // applies only the NEWEST delta must not migrate caches — the missed
  // delta's invalidations would be lost. The engine detects the broken
  // chain (delta base counts != current snapshot) and swaps wholesale.
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});

  const std::vector<int64_t> ids = SomeUsers();
  ASSERT_TRUE(engine->Score(ids).ok());
  const ServeStats warm = engine->stats();

  // Epoch 1 is never published to the engine (adds users AND orders, so
  // skipping its invalidations would matter).
  AppendBatch first = OrderAppends(db, 2, now_ - 1, /*first_user=*/0);
  for (auto& row : UserAppends(db, 2).rows) first.rows.push_back(row);
  ASSERT_TRUE(stream->Apply(first).ok());

  // Epoch 2's delta describes the change from epoch 1, not from the
  // engine's current (base) snapshot.
  auto second = stream->Apply(OrderAppends(db, 2, now_ - 1,
                                           /*first_user=*/9));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(engine
                  ->ApplyDelta(second.value().graph, now_,
                               second.value().delta)
                  .ok());

  // Wholesale, not precise: the embedding cache was epoch-swapped.
  EXPECT_EQ(engine->stats().shard_swaps, warm.shard_swaps + 1);

  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  auto reference = MakeEngine(&rebuilt.graph, now_, ServeOptions{});
  ExpectScoresExactlyEqual(engine->Score(ids).value(),
                           reference->Score(ids).value());
}

// ------------------------------------------------------------ fault paths

TEST_F(StreamingServeTest, PoisonedDeltaLeavesPreviousSnapshotServable) {
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});

  const std::vector<int64_t> ids = SomeUsers();
  auto before = engine->Score(ids);
  ASSERT_TRUE(before.ok());
  const int64_t version = engine->snapshot_version();

  auto result = stream->Apply(OrderAppends(db, 3, now_ - 1));
  ASSERT_TRUE(result.ok());

  FaultInjector::Global().Arm(FaultSite::kServeSnapshotAdvance);
  Status st =
      engine->ApplyDelta(result.value().graph, now_, result.value().delta);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(FaultInjector::Global().fired(FaultSite::kServeSnapshotAdvance),
            1);

  // The engine still serves the OLD snapshot, bit-identically.
  EXPECT_EQ(engine->snapshot_version(), version);
  EXPECT_EQ(engine->state(), ServeState::kServing);  // breaker not latched
  ExpectScoresExactlyEqual(engine->Score(ids).value(), before.value());

  // The retry (fault cleared) publishes the delta and matches the oracle.
  FaultInjector::Global().Reset();
  ASSERT_TRUE(
      engine->ApplyDelta(result.value().graph, now_, result.value().delta)
          .ok());
  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  auto reference = MakeEngine(&rebuilt.graph, now_, ServeOptions{});
  ExpectScoresExactlyEqual(engine->Score(ids).value(),
                           reference->Score(ids).value());
}

TEST_F(StreamingServeTest, StreamRecoveryEpochServesBitIdentically) {
  // A mid-apply fault inside the streaming layer forces its rebuild
  // recovery; the recovered epoch must serve exactly like the oracle.
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});
  ASSERT_TRUE(engine->Score(SomeUsers()).ok());

  FaultInjector::Global().Arm(FaultSite::kAppendApply);
  auto result = stream->Apply(OrderAppends(db, 4, now_ - 1));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().recovered);
  FaultInjector::Global().Reset();

  ASSERT_TRUE(
      engine->ApplyDelta(result.value().graph, now_, result.value().delta)
          .ok());
  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  auto reference = MakeEngine(&rebuilt.graph, now_, ServeOptions{});
  ExpectScoresExactlyEqual(engine->Score(SomeUsers()).value(),
                           reference->Score(SomeUsers()).value());
}

// ------------------------------------------------- concurrent interleaving

TEST_F(StreamingServeTest, ConcurrentScoresAndDeltasStayConsistent) {
  // Four scorer threads hammer the engine while the writer streams
  // batches and publishes deltas. Every request must succeed (admission
  // is unbounded here) and the final state must match the from-scratch
  // oracle. Run under TSan in the ci.sh tsan lane.
  Database db = MakeDb();
  auto stream = StreamingDbGraph::Create(&db).value();
  auto engine = MakeEngine(stream->graph(), now_, ServeOptions{});

  // Only ids valid in EVERY epoch (scorers race with version bumps).
  const std::vector<int64_t> ids = SomeUsers();
  ASSERT_TRUE(engine->Score(ids).ok());

  std::atomic<bool> done{false};
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto scores = engine->Score(ids);
        if (!scores.ok() || scores.value().size() != ids.size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  for (int64_t round = 0; round < 8; ++round) {
    AppendBatch batch = OrderAppends(db, 3, now_ - 1, round * 7);
    for (auto& row : UserAppends(db, 1).rows) batch.rows.push_back(row);
    auto result = stream->Apply(batch);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(engine
                    ->ApplyDelta(result.value().graph, now_,
                                 result.value().delta)
                    .ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& th : scorers) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto rebuilt = BuildDbGraph(db, stream->RebuildOptions()).value();
  auto reference = MakeEngine(&rebuilt.graph, now_, ServeOptions{});
  ExpectScoresExactlyEqual(engine->Score(ids).value(),
                           reference->Score(ids).value());
}

}  // namespace
}  // namespace relgraph

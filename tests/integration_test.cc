// Cross-module integration tests: full pipelines from raw relational data
// (including CSV round trips) to trained, evaluated, and persisted models.

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/clinical.h"
#include "datagen/ecommerce.h"
#include "datagen/social.h"
#include "pq/engine.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "relational/csv_io.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace relgraph {
namespace {

ECommerceConfig SmallWorld() {
  ECommerceConfig cfg;
  cfg.num_users = 150;
  cfg.num_products = 30;
  cfg.num_categories = 4;
  cfg.horizon_days = 150;
  cfg.seed = 77;
  return cfg;
}

TEST(IntegrationTest, CsvRoundTripPreservesQueryResults) {
  // Serialize a generated database to CSV, reload it into a fresh
  // database, and verify a deterministic (CONSTANT-model) query gives the
  // exact same training table.
  Database original = MakeECommerceDb(SmallWorld());
  Database reloaded("ecommerce");
  for (const auto& table : original.tables()) {
    Table* copy = reloaded.AddTable(table->schema()).value();
    ASSERT_TRUE(LoadTableFromCsv(TableToCsv(*table), copy).ok());
  }
  ASSERT_TRUE(reloaded.Validate().ok());
  EXPECT_EQ(reloaded.TotalRows(), original.TotalRows());

  const std::string query =
      "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
      "USING CONSTANT";
  PredictiveQueryEngine e1(&original), e2(&reloaded);
  auto r1 = e1.Execute(query);
  auto r2 = e2.Execute(query);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1.value().table.size(), r2.value().table.size());
  EXPECT_EQ(r1.value().table.labels, r2.value().table.labels);
  EXPECT_EQ(r1.value().table.cutoffs, r2.value().table.cutoffs);
}

TEST(IntegrationTest, SameSeedSameQuerySameResult) {
  // The whole pipeline is deterministic: two engines over two identically
  // seeded databases must produce identical GNN test metrics.
  Database db1 = MakeECommerceDb(SmallWorld());
  Database db2 = MakeECommerceDb(SmallWorld());
  const std::string query =
      "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
      "USING GNN WITH layers=1, hidden=16, epochs=3, seed=5";
  PredictiveQueryEngine e1(&db1), e2(&db2);
  auto r1 = e1.Execute(query);
  auto r2 = e2.Execute(query);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().test_metric, r2.value().test_metric);
  EXPECT_EQ(r1.value().test_scores, r2.value().test_scores);
}

TEST(IntegrationTest, PredictorSaveLoadRoundTrip) {
  Database db = MakeECommerceDb(SmallWorld());
  auto parsed = ParseQuery(
                    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH "
                    "users")
                    .value();
  auto rq = AnalyzeQuery(parsed, db).value();
  auto cutoffs = MakeCutoffs(rq, db).value();
  auto table = BuildTrainingTable(rq, db, cutoffs).value();
  auto split = MakeSplit(rq, table, cutoffs).value();
  auto graph = BuildDbGraph(db).value();
  const NodeTypeId users = graph.graph.FindNodeType("users").value();

  GnnConfig gnn;
  gnn.hidden_dim = 16;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  // Exhaustive fanout: no sampling randomness, so restored weights must
  // reproduce scores exactly.
  sopts.fanouts = {1000};
  TrainerConfig tc;
  tc.epochs = 3;
  tc.seed = 11;
  GnnNodePredictor trained(&graph.graph, users,
                           TaskKind::kBinaryClassification, 2, gnn, sopts,
                           tc);
  ASSERT_TRUE(trained.Fit(table, split).ok());
  auto expected = trained.PredictScores(table, split.test);

  const std::string path = testing::TempDir() + "/relgraph_ckpt.bin";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  // Fresh predictor with the same architecture, different init seed.
  TrainerConfig tc2 = tc;
  tc2.seed = 999;
  GnnNodePredictor restored(&graph.graph, users,
                            TaskKind::kBinaryClassification, 2, gnn, sopts,
                            tc2);
  ASSERT_TRUE(restored.LoadWeights(path).ok());
  auto got = restored.PredictScores(table, split.test);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-6) << i;
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, LoadWeightsRejectsWrongArchitecture) {
  Database db = MakeECommerceDb(SmallWorld());
  auto graph = BuildDbGraph(db).value();
  const NodeTypeId users = graph.graph.FindNodeType("users").value();
  SamplerOptions sopts;
  sopts.fanouts = {4};
  TrainerConfig tc;
  GnnConfig small;
  small.hidden_dim = 8;
  small.num_layers = 1;
  GnnNodePredictor a(&graph.graph, users, TaskKind::kBinaryClassification,
                     2, small, sopts, tc);
  const std::string path = testing::TempDir() + "/relgraph_ckpt2.bin";
  ASSERT_TRUE(a.SaveWeights(path).ok());
  GnnConfig big;
  big.hidden_dim = 16;
  big.num_layers = 1;
  GnnNodePredictor b(&graph.graph, users, TaskKind::kBinaryClassification,
                     2, big, sopts, tc);
  EXPECT_FALSE(b.LoadWeights(path).ok());
  std::remove(path.c_str());
}

TEST(IntegrationTest, MultipleQueriesShareOneEngine) {
  Database db = MakeECommerceDb(SmallWorld());
  PredictiveQueryEngine engine(&db);
  // Different tasks, same engine and graph cache.
  auto churn = engine.Execute(
      "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users USING "
      "LINEAR WITH hops=1");
  auto spend = engine.Execute(
      "PREDICT SUM(orders.total) OVER NEXT 28 DAYS FOR EACH users USING "
      "LINEAR WITH hops=1");
  auto rank = engine.Execute(
      "PREDICT LIST(orders.product_id) OVER NEXT 28 DAYS FOR EACH users "
      "USING POPULAR");
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  ASSERT_TRUE(spend.ok()) << spend.status().ToString();
  ASSERT_TRUE(rank.ok()) << rank.status().ToString();
  EXPECT_EQ(churn.value().kind, TaskKind::kBinaryClassification);
  EXPECT_EQ(spend.value().kind, TaskKind::kRegression);
  EXPECT_EQ(rank.value().kind, TaskKind::kRanking);
}

TEST(IntegrationTest, ClinicalEndToEndWithGat) {
  ClinicalConfig cfg;
  cfg.num_patients = 150;
  cfg.horizon_days = 240;
  cfg.seed = 13;
  Database db = MakeClinicalDb(cfg);
  PredictiveQueryEngine engine(&db);
  auto result = engine.Execute(
      "PREDICT EXISTS(visits) OVER NEXT 30 DAYS FOR EACH patients "
      "USING GNN WITH layers=2, hidden=24, epochs=4, conv=gat");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().test_metric, 0.55);
}

TEST(IntegrationTest, SocialDormancyAcrossModels) {
  SocialConfig cfg;
  cfg.num_users = 200;
  cfg.horizon_days = 100;
  cfg.seed = 19;
  Database db = MakeSocialDb(cfg);
  PredictiveQueryEngine engine(&db);
  const std::string task =
      "PREDICT COUNT(posts) = 0 OVER NEXT 14 DAYS FOR EACH users ";
  auto gbdt = engine.Execute(task + "USING GBDT");
  auto gnn = engine.Execute(task +
                            "USING GNN WITH layers=2, hidden=24, epochs=4");
  ASSERT_TRUE(gbdt.ok()) << gbdt.status().ToString();
  ASSERT_TRUE(gnn.ok()) << gnn.status().ToString();
  EXPECT_GT(gbdt.value().test_metric, 0.6);
  EXPECT_GT(gnn.value().test_metric, 0.6);
}

TEST(IntegrationTest, EngineSeedChangesGnnButNotLabels) {
  Database db = MakeECommerceDb(SmallWorld());
  PredictiveQueryEngine engine(&db);
  const std::string base =
      "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users USING "
      "GNN WITH layers=1, hidden=16, epochs=2, seed=";
  auto r1 = engine.Execute(base + "1");
  auto r2 = engine.Execute(base + "2");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().table.labels, r2.value().table.labels);
  EXPECT_NE(r1.value().test_scores, r2.value().test_scores);
}

}  // namespace
}  // namespace relgraph

#ifndef RELGRAPH_CORE_METRICS_H_
#define RELGRAPH_CORE_METRICS_H_

// Process-wide metrics registry: named monotonic counters, gauges, and
// fixed-bucket histograms.
//
// Design contract:
//  - thread-safe: values update with relaxed atomics, so concurrent
//    increments from the shared thread pool are exact (sums equal the
//    serial run); the registry mutex is taken only on first registration
//    and on dump;
//  - deterministic to read: dumps are name-sorted, numbers are formatted
//    with a fixed round-trippable format, and identical update sequences
//    produce byte-identical dumps;
//  - zero cost when off: compiling with -DRELGRAPH_NO_METRICS turns the
//    macros into nothing; otherwise the `RELGRAPH_METRICS` environment
//    variable (default on; "0"/"false"/"off" disables) gates every site
//    behind one relaxed atomic load, with no allocation and no registry
//    access while disabled.
//
// Instrumentation never draws from any Rng and never branches on data
// values, so enabling metrics cannot perturb bit-exact determinism of
// training, sampling, or kernels.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace relgraph {

/// Monotonically increasing event count. Add() is a relaxed atomic add, so
/// concurrent updates from any number of pool workers total exactly.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTesting() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (queue depths, sizes, rates).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTesting() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change; an implicit +inf bucket catches the overflow. Counts are
/// relaxed atomics; the sum accumulates via CAS (exact for integer-valued
/// observations, which is what the latency-in-us call sites record).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Count in bucket i (0..bounds.size(); the last is the +inf bucket).
  int64_t bucket_count(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }
  void ResetForTesting();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Standard latency buckets in milliseconds for the batch/query histograms.
const std::vector<double>& LatencyBucketsMs();

/// Sub-millisecond-resolution latency buckets for online-serving
/// histograms, where a warm-cache request completes in microseconds and
/// the standard buckets would collapse everything into the first bin.
const std::vector<double>& FineLatencyBucketsMs();

/// Power-of-two row-count buckets for batch-size histograms (e.g. rows per
/// coalesced serving micro-batch).
const std::vector<double>& BatchRowBuckets();

/// The process-wide registry. Metric objects are created on first lookup
/// and live for the process lifetime, so call sites may cache the returned
/// pointers (ResetForTesting zeroes values but never invalidates
/// pointers).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` must be ascending; a histogram fetched again keeps the
  /// bounds it was first registered with.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  /// Name-sorted snapshot, one metric per line. `prefix` (optional)
  /// restricts the dump to metrics whose name starts with it.
  std::string DumpText(std::string_view prefix = {}) const;

  /// Name-sorted JSON snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count": c, "sum": s,
  ///                          "buckets": [{"le": b, "count": c}, ...]}}}
  /// The final bucket's "le" is the string "inf".
  std::string DumpJson(std::string_view prefix = {}) const;

  /// Zeroes every registered metric (pointers stay valid). Test-only.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Runtime switch. Initialized once from the RELGRAPH_METRICS environment
/// variable (unset/1/true/on = enabled); SetMetricsEnabled overrides.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Convenience dumps of the global registry.
std::string DumpMetricsText(std::string_view prefix = {});
std::string DumpMetricsJson(std::string_view prefix = {});

/// Atomically writes DumpMetricsJson() to `path` (crash-safe, like every
/// other durable artifact).
Status WriteMetricsJson(const std::string& path,
                        std::string_view prefix = {});

}  // namespace relgraph

// Counter site macro: one relaxed load when disabled, one cached-pointer
// atomic add when enabled. `name` must be a string literal (the cached
// static makes a dynamic name stick to its first value).
#ifdef RELGRAPH_NO_METRICS
#define RELGRAPH_COUNTER_ADD(name, n) \
  do {                                \
  } while (0)
#else
#define RELGRAPH_COUNTER_ADD(name, n)                           \
  do {                                                          \
    if (::relgraph::MetricsEnabled()) {                         \
      static ::relgraph::Counter* relgraph_counter_ =           \
          ::relgraph::MetricsRegistry::Global().GetCounter(     \
              name);                                            \
      relgraph_counter_->Add(n);                                \
    }                                                           \
  } while (0)
#endif

#define RELGRAPH_COUNTER_INC(name) RELGRAPH_COUNTER_ADD(name, 1)

#endif  // RELGRAPH_CORE_METRICS_H_

#ifndef RELGRAPH_DATAGEN_ECOMMERCE_H_
#define RELGRAPH_DATAGEN_ECOMMERCE_H_

#include <cstdint>

#include "relational/database.h"

namespace relgraph {

/// Parameters of the synthetic e-commerce world.
struct ECommerceConfig {
  int64_t num_users = 1000;
  int64_t num_products = 200;
  int64_t num_categories = 12;
  int64_t horizon_days = 180;
  uint64_t seed = 42;

  /// Mean days between orders for a fully satisfied user.
  double mean_order_interval_days = 14.0;

  /// Probability that a purchase is followed by a review.
  double review_prob = 0.3;
};

/// Builds a deterministic relational e-commerce database:
///
///   categories(id PK, name, base_quality)
///   users(id PK, country, age, premium)
///   products(id PK, category_id -> categories, price, quality_score)
///   orders(id PK, user_id -> users, product_id -> products, ts TIME,
///          quantity, unit_price, total)
///   reviews(id PK, user_id -> users, product_id -> products, ts TIME,
///           rating)
///
/// Planted signal (the "paper claim" the benches test): each user carries a
/// latent satisfaction that is pulled toward the *latent quality* of the
/// products they buy; their future order rate is proportional to it. The
/// product table exposes a noisy `quality_score` proxy, so:
///   - hop 0 (user columns only): weak signal (premium ~ +30% base rate);
///   - hop 1 (user→orders): moderate signal (recent order recency/counts);
///   - hop 2 (user→orders→products): strong signal (quality of recently
///     bought products drives churn and future spend).
///
/// All events lie in [0, horizon_days); generation is bit-reproducible for
/// a given config.
Database MakeECommerceDb(const ECommerceConfig& config);

}  // namespace relgraph

#endif  // RELGRAPH_DATAGEN_ECOMMERCE_H_

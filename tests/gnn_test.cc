#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "gnn/heads.h"
#include "gnn/hetero_sage.h"
#include "train/metrics.h"
#include "train/recommender.h"
#include "train/trainer.h"

namespace relgraph {
namespace {

std::vector<int64_t> Range(int64_t lo, int64_t hi) {
  std::vector<int64_t> out(static_cast<size_t>(hi - lo));
  std::iota(out.begin(), out.end(), lo);
  return out;
}

/// Builds a bipartite graph where each entity (type "a") links to `deg`
/// items (type "b"); item features carry a planted scalar. The label of an
/// entity is 1 iff the mean planted scalar of its items is positive — a
/// pure 1-hop task invisible from entity features.
struct OneHopWorld {
  HeteroGraph graph;
  TrainingTable table;
};

OneHopWorld MakeOneHopWorld(int64_t n_entities, int64_t n_items,
                            uint64_t seed) {
  OneHopWorld w;
  Rng rng(seed);
  NodeTypeId a = w.graph.AddNodeType("a", n_entities).value();
  NodeTypeId b = w.graph.AddNodeType("b", n_items).value();
  // Entity features: pure noise.
  Tensor fa(n_entities, 3);
  for (int64_t i = 0; i < fa.numel(); ++i) {
    fa.data()[i] = static_cast<float>(rng.Normal(0, 1));
  }
  EXPECT_TRUE(w.graph.SetNodeFeatures(a, std::move(fa)).ok());
  Tensor fb(n_items, 2);
  std::vector<double> item_signal(static_cast<size_t>(n_items));
  for (int64_t i = 0; i < n_items; ++i) {
    item_signal[static_cast<size_t>(i)] = rng.Normal(0, 1);
    fb.at(i, 0) = static_cast<float>(item_signal[static_cast<size_t>(i)]);
    fb.at(i, 1) = static_cast<float>(rng.Normal(0, 1));
  }
  EXPECT_TRUE(w.graph.SetNodeFeatures(b, std::move(fb)).ok());
  std::vector<int64_t> src, dst;
  std::vector<Timestamp> times;
  const int64_t deg = 5;
  w.table.kind = TaskKind::kBinaryClassification;
  w.table.entity_table = "a";
  for (int64_t i = 0; i < n_entities; ++i) {
    double mean = 0;
    for (int64_t d = 0; d < deg; ++d) {
      const int64_t item = static_cast<int64_t>(
          rng.UniformU64(static_cast<uint64_t>(n_items)));
      src.push_back(i);
      dst.push_back(item);
      times.push_back(Days(1));
      mean += item_signal[static_cast<size_t>(item)];
    }
    w.table.entity_rows.push_back(i);
    w.table.cutoffs.push_back(Days(100));
    w.table.labels.push_back(mean > 0 ? 1.0 : 0.0);
  }
  EXPECT_TRUE(w.graph.AddEdgeType("a__b", a, b, src, dst, times).ok());
  EXPECT_TRUE(w.graph.AddEdgeType("rev_a__b", b, a, dst, src, times).ok());
  return w;
}

TEST(HeteroSageTest, ForwardShapes) {
  OneHopWorld w = MakeOneHopWorld(50, 20, 1);
  GnnConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_layers = 1;
  Rng rng(2);
  HeteroSageModel model(&w.graph, cfg, &rng);
  SamplerOptions sopts;
  sopts.fanouts = {5};
  NeighborSampler sampler(&w.graph, sopts);
  NodeTypeId a = w.graph.FindNodeType("a").value();
  Subgraph sg = sampler.Sample(a, {0, 1, 2}, {Days(100), Days(100),
                                              Days(100)}, &rng);
  VarPtr emb = model.Forward(sg, a, &rng, false);
  EXPECT_EQ(emb->rows(), 3);
  EXPECT_EQ(emb->cols(), 16);
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(HeteroSageTest, GradFlowsToAllParameters) {
  OneHopWorld w = MakeOneHopWorld(30, 10, 3);
  GnnConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  Rng rng(4);
  HeteroSageModel model(&w.graph, cfg, &rng);
  SamplerOptions sopts;
  sopts.fanouts = {5};
  NeighborSampler sampler(&w.graph, sopts);
  NodeTypeId a = w.graph.FindNodeType("a").value();
  Subgraph sg = sampler.Sample(a, Range(0, 30),
                               std::vector<Timestamp>(30, Days(100)), &rng);
  for (auto& p : model.Parameters()) p->ZeroGrad();
  VarPtr emb = model.Forward(sg, a, &rng, true);
  Backward(ag::Sum(emb));
  int64_t with_grad = 0, total = 0;
  for (auto& p : model.Parameters()) {
    ++total;
    if (p->grad().AbsMax() > 0) ++with_grad;
  }
  // Encoders + self/message transforms for both types should all receive
  // gradient (every edge type present in this graph is sampled).
  EXPECT_GT(with_grad, total / 2);
}

TEST(HeteroSageTest, AggregationVariantsProduceDifferentOutputs) {
  OneHopWorld w = MakeOneHopWorld(20, 10, 5);
  NodeTypeId a = w.graph.FindNodeType("a").value();
  SamplerOptions sopts;
  sopts.fanouts = {5};
  NeighborSampler sampler(&w.graph, sopts);
  Rng srng(7);
  Subgraph sg = sampler.Sample(a, {0, 1}, {Days(100), Days(100)}, &srng);
  auto run = [&](GnnAggregation agg) {
    GnnConfig cfg;
    cfg.hidden_dim = 8;
    cfg.num_layers = 1;
    cfg.aggregation = agg;
    Rng rng(6);  // same init seed for all variants
    HeteroSageModel model(&w.graph, cfg, &rng);
    Rng frng(8);
    return model.Forward(sg, a, &frng, false)->value();
  };
  Tensor mean_out = run(GnnAggregation::kMean);
  Tensor sum_out = run(GnnAggregation::kSum);
  Tensor max_out = run(GnnAggregation::kMax);
  EXPECT_GT(Sub(mean_out, sum_out).AbsMax(), 1e-6);
  EXPECT_GT(Sub(mean_out, max_out).AbsMax(), 1e-6);
}

TEST(HeteroSageTest, AttentionConvForwardAndGrad) {
  OneHopWorld w = MakeOneHopWorld(40, 15, 25);
  GnnConfig cfg;
  cfg.hidden_dim = 16;
  cfg.num_layers = 1;
  cfg.conv = GnnConv::kAttention;
  Rng rng(26);
  HeteroSageModel model(&w.graph, cfg, &rng);
  SamplerOptions sopts;
  sopts.fanouts = {5};
  NeighborSampler sampler(&w.graph, sopts);
  NodeTypeId a = w.graph.FindNodeType("a").value();
  Subgraph sg = sampler.Sample(a, {0, 1, 2, 3},
                               std::vector<Timestamp>(4, Days(100)), &rng);
  for (auto& p : model.Parameters()) p->ZeroGrad();
  VarPtr emb = model.Forward(sg, a, &rng, true);
  EXPECT_EQ(emb->rows(), 4);
  EXPECT_EQ(emb->cols(), 16);
  Backward(ag::Sum(emb));
  // Attention parameters must receive gradient.
  int64_t att_params_with_grad = 0;
  for (auto& p : model.Parameters()) {
    if (p->value().cols() == 1 && p->value().rows() == 16 &&
        p->grad().AbsMax() > 0) {
      ++att_params_with_grad;
    }
  }
  EXPECT_GT(att_params_with_grad, 0);
}

TEST(GnnNodePredictorTest, AttentionConvLearnsOneHopSignal) {
  OneHopWorld w = MakeOneHopWorld(400, 50, 27);
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 1;
  gnn.conv = GnnConv::kAttention;
  SamplerOptions sopts;
  sopts.fanouts = {8};
  TrainerConfig tc;
  tc.epochs = 15;
  tc.lr = 0.02f;
  tc.seed = 28;
  NodeTypeId a = w.graph.FindNodeType("a").value();
  GnnNodePredictor predictor(&w.graph, a, TaskKind::kBinaryClassification, 2,
                             gnn, sopts, tc);
  Split split;
  split.train = Range(0, 280);
  split.val = Range(280, 340);
  split.test = Range(340, 400);
  ASSERT_TRUE(predictor.Fit(w.table, split).ok());
  EXPECT_GT(predictor.Evaluate(w.table, split.test), 0.8);
}

TEST(GnnNodePredictorTest, LearnsOneHopSignal) {
  OneHopWorld w = MakeOneHopWorld(500, 60, 11);
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  sopts.fanouts = {8};
  TrainerConfig tc;
  tc.epochs = 15;
  tc.lr = 0.02f;
  tc.seed = 12;
  NodeTypeId a = w.graph.FindNodeType("a").value();
  GnnNodePredictor predictor(&w.graph, a, TaskKind::kBinaryClassification, 2,
                             gnn, sopts, tc);
  Split split;
  split.train = Range(0, 350);
  split.val = Range(350, 420);
  split.test = Range(420, 500);
  ASSERT_TRUE(predictor.Fit(w.table, split).ok());
  const double auc = predictor.Evaluate(w.table, split.test);
  EXPECT_GT(auc, 0.85) << "1-hop signal should be learnable";
}

TEST(GnnNodePredictorTest, RegressionLearnsNeighborMean) {
  OneHopWorld w = MakeOneHopWorld(400, 50, 13);
  // Convert labels to a regression target (scaled class).
  w.table.kind = TaskKind::kRegression;
  for (auto& l : w.table.labels) l = l * 10.0 + 5.0;
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  sopts.fanouts = {8};
  TrainerConfig tc;
  tc.epochs = 15;
  tc.lr = 0.02f;
  tc.seed = 14;
  NodeTypeId a = w.graph.FindNodeType("a").value();
  GnnNodePredictor predictor(&w.graph, a, TaskKind::kRegression, 2, gnn,
                             sopts, tc);
  Split split;
  split.train = Range(0, 300);
  split.val = Range(300, 350);
  split.test = Range(350, 400);
  ASSERT_TRUE(predictor.Fit(w.table, split).ok());
  auto preds = predictor.PredictScores(w.table, split.test);
  std::vector<double> truth;
  for (int64_t i : split.test) {
    truth.push_back(w.table.labels[static_cast<size_t>(i)]);
  }
  // Constant predictor MAE would be ~5; the GNN should at least halve it.
  EXPECT_LT(MeanAbsoluteError(preds, truth), 2.8);
}

TEST(GnnNodePredictorTest, MulticlassSmoke) {
  OneHopWorld w = MakeOneHopWorld(300, 30, 15);
  w.table.kind = TaskKind::kMulticlassClassification;
  w.table.num_classes = 2;
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  sopts.fanouts = {8};
  TrainerConfig tc;
  tc.epochs = 25;
  tc.lr = 0.02f;
  tc.patience = 6;
  tc.seed = 16;
  NodeTypeId a = w.graph.FindNodeType("a").value();
  GnnNodePredictor predictor(&w.graph, a,
                             TaskKind::kMulticlassClassification, 2, gnn,
                             sopts, tc);
  Split split;
  split.train = Range(0, 220);
  split.val = Range(220, 260);
  split.test = Range(260, 300);
  ASSERT_TRUE(predictor.Fit(w.table, split).ok());
  auto classes = predictor.PredictClasses(w.table, split.test);
  EXPECT_EQ(classes.size(), split.test.size());
  std::vector<double> truth;
  for (int64_t i : split.test) {
    truth.push_back(w.table.labels[static_cast<size_t>(i)]);
  }
  EXPECT_GT(MulticlassAccuracy(classes, truth), 0.7);
}

TEST(GnnNodePredictorTest, MismatchedDepthAborts) {
  OneHopWorld w = MakeOneHopWorld(20, 10, 17);
  GnnConfig gnn;
  gnn.num_layers = 2;
  SamplerOptions sopts;
  sopts.fanouts = {5};  // depth 1 != 2 layers
  TrainerConfig tc;
  NodeTypeId a = w.graph.FindNodeType("a").value();
  EXPECT_DEATH(
      {
        GnnNodePredictor p(&w.graph, a, TaskKind::kBinaryClassification, 2,
                           gnn, sopts, tc);
      },
      "depth");
}

/// Recommendation world: users belong to one of 4 product groups; history
/// edges go to their group's products, and the ground-truth future items
/// are the group's remaining products.
struct RecWorld {
  HeteroGraph graph;
  TrainingTable table;
};

RecWorld MakeRecWorld(int64_t n_users, int64_t n_products, uint64_t seed) {
  RecWorld w;
  Rng rng(seed);
  NodeTypeId u = w.graph.AddNodeType("users", n_users).value();
  NodeTypeId p = w.graph.AddNodeType("products", n_products).value();
  EXPECT_TRUE(w.graph.SetNodeFeatures(u, Tensor::Ones(n_users, 1)).ok());
  // Product features leak nothing about the group (identity comes from the
  // co-purchase topology alone).
  Tensor fp(n_products, 2);
  for (int64_t i = 0; i < fp.numel(); ++i) {
    fp.data()[i] = static_cast<float>(rng.Normal(0, 1));
  }
  EXPECT_TRUE(w.graph.SetNodeFeatures(p, std::move(fp)).ok());
  const int64_t groups = 4;
  const int64_t per_group = n_products / groups;
  std::vector<int64_t> src, dst;
  std::vector<Timestamp> times;
  w.table.kind = TaskKind::kRanking;
  w.table.entity_table = "users";
  w.table.target_table = "products";
  for (int64_t i = 0; i < n_users; ++i) {
    const int64_t g = static_cast<int64_t>(
        rng.UniformU64(static_cast<uint64_t>(groups)));
    const int64_t lo = g * per_group;
    // History: 4 distinct products of the group.
    auto picks = rng.SampleWithoutReplacement(per_group, 4);
    std::vector<int64_t> future;
    for (int64_t j = 0; j < per_group; ++j) {
      const int64_t prod = lo + j;
      bool in_hist = false;
      for (int64_t pick : picks) in_hist |= (lo + pick == prod);
      if (in_hist) {
        src.push_back(i);
        dst.push_back(prod);
        times.push_back(Days(static_cast<int64_t>(rng.UniformInt(1, 50))));
      } else if (future.size() < 3) {
        future.push_back(prod);
      }
    }
    w.table.entity_rows.push_back(i);
    w.table.cutoffs.push_back(Days(60));
    w.table.target_lists.push_back(std::move(future));
  }
  EXPECT_TRUE(
      w.graph.AddEdgeType("orders__user", u, p, src, dst, times).ok());
  EXPECT_TRUE(
      w.graph.AddEdgeType("rev_orders__user", p, u, dst, src, times).ok());
  return w;
}

TEST(GnnRecommenderTest, BeatsRandomByWideMargin) {
  RecWorld w = MakeRecWorld(300, 40, 21);
  GnnConfig gnn;
  gnn.hidden_dim = 32;
  gnn.num_layers = 2;
  // The planted signal is pure co-purchase topology; time/degree encodings
  // only add constant-ish inputs here, so test both disabled.
  gnn.time_encoding = false;
  gnn.degree_encoding = false;
  SamplerOptions sopts;
  sopts.fanouts = {6, 6};
  TrainerConfig tc;
  tc.epochs = 16;
  tc.lr = 0.03f;
  tc.seed = 22;
  tc.patience = 5;
  tc.batch_size = 256;
  NodeTypeId u = w.graph.FindNodeType("users").value();
  NodeTypeId p = w.graph.FindNodeType("products").value();
  // This split is BY USER (cold-start), so per-node ID embeddings would be
  // untrained noise at test time; exercise the pure inductive pathway.
  GnnRecommender rec(&w.graph, u, p, gnn, sopts, tc,
                     /*id_embeddings=*/false);
  Split split;
  split.train = Range(0, 200);
  split.val = Range(200, 250);
  split.test = Range(250, 300);
  ASSERT_TRUE(rec.Fit(w.table, split).ok());
  const double map10 = rec.EvaluateMapAtK(w.table, split.test, 10);
  // Random ranking over 40 products with 3 relevant gives MAP@10 ~= 0.1.
  EXPECT_GT(map10, 0.35);
}

TEST(GnnRecommenderTest, SaveLoadRoundTrip) {
  RecWorld w = MakeRecWorld(60, 32, 31);
  GnnConfig gnn;
  gnn.hidden_dim = 16;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  sopts.fanouts = {100};  // exhaustive: deterministic inference
  TrainerConfig tc;
  tc.epochs = 3;
  tc.seed = 32;
  NodeTypeId u = w.graph.FindNodeType("users").value();
  NodeTypeId p = w.graph.FindNodeType("products").value();
  GnnRecommender trained(&w.graph, u, p, gnn, sopts, tc);
  Split split;
  split.train = Range(0, 40);
  split.val = Range(40, 50);
  split.test = Range(50, 60);
  ASSERT_TRUE(trained.Fit(w.table, split).ok());
  auto expected = trained.RankTargets(w.table, split.test, 5);
  const std::string path = testing::TempDir() + "/relgraph_rec.ckpt";
  ASSERT_TRUE(trained.SaveWeights(path).ok());

  TrainerConfig tc2 = tc;
  tc2.seed = 777;
  GnnRecommender restored(&w.graph, u, p, gnn, sopts, tc2);
  ASSERT_TRUE(restored.LoadWeights(path).ok());
  auto got = restored.RankTargets(w.table, split.test, 5);
  EXPECT_EQ(got, expected);
  std::remove(path.c_str());
}

TEST(GnnRecommenderTest, RequiresRankingTable) {
  RecWorld w = MakeRecWorld(20, 8, 23);
  w.table.kind = TaskKind::kBinaryClassification;
  GnnConfig gnn;
  gnn.hidden_dim = 8;
  gnn.num_layers = 1;
  SamplerOptions sopts;
  sopts.fanouts = {4};
  TrainerConfig tc;
  NodeTypeId u = w.graph.FindNodeType("users").value();
  NodeTypeId p = w.graph.FindNodeType("products").value();
  GnnRecommender rec(&w.graph, u, p, gnn, sopts, tc);
  Split split;
  split.train = Range(0, 20);
  EXPECT_FALSE(rec.Fit(w.table, split).ok());
}

}  // namespace
}  // namespace relgraph

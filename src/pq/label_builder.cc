#include "pq/label_builder.h"

#include <algorithm>

#include "core/string_util.h"
#include "relational/query.h"

namespace relgraph {

Result<std::vector<Timestamp>> MakeCutoffs(const ResolvedQuery& query,
                                           const Database& db) {
  const auto [t0, t1] = db.TimeRange();
  if (t0 == kNoTimestamp) {
    return Status::FailedPrecondition(
        "database has no temporal events; predictive windows are undefined");
  }
  const Duration window = query.parsed.window;
  const Duration stride = query.parsed.stride.value_or(window);
  std::vector<Timestamp> cutoffs;
  // First cutoff leaves one window of history; last leaves one full label
  // window of future.
  for (Timestamp t = t0 + window; t + window <= t1 + 1; t += stride) {
    cutoffs.push_back(t);
  }
  if (cutoffs.empty()) {
    return Status::InvalidArgument(StrFormat(
        "window %s does not fit the data's time span [%s, %s]",
        FormatDuration(window).c_str(), FormatTimestamp(t0).c_str(),
        FormatTimestamp(t1).c_str()));
  }
  return cutoffs;
}

Result<TrainingTable> BuildTrainingTable(
    const ResolvedQuery& query, const Database& db,
    const std::vector<Timestamp>& cutoffs) {
  (void)db;
  TrainingTable table;
  table.kind = query.kind;
  table.entity_table = query.entity->name();
  table.num_classes = query.num_classes;
  if (query.kind == TaskKind::kRanking) {
    table.target_table = query.ranking_target->name();
  }
  RELGRAPH_ASSIGN_OR_RETURN(FkIndex index,
                            FkIndex::Build(*query.fact,
                                           query.fact_fk_column));
  // Entity rows passing the WHERE filter.
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < query.entity->num_rows(); ++r) {
    if (!query.entity_filter || query.entity_filter(r)) rows.push_back(r);
  }
  if (rows.empty()) {
    return Status::InvalidArgument(
        "WHERE clause filters out every entity row");
  }
  // FK indexes for the history predicates.
  std::vector<FkIndex> history_indexes;
  history_indexes.reserve(query.history.size());
  for (const auto& hist : query.history) {
    RELGRAPH_ASSIGN_OR_RETURN(FkIndex hidx,
                              FkIndex::Build(*hist.fact, hist.fk_column));
    history_indexes.push_back(std::move(hidx));
  }
  const Duration window = query.parsed.window;
  for (Timestamp cutoff : cutoffs) {
    for (int64_t r : rows) {
      const int64_t pk = query.entity->PrimaryKey(r);
      // Cohort check: every history predicate must hold at this cutoff.
      bool in_cohort = true;
      for (size_t h = 0; h < query.history.size(); ++h) {
        const auto& hist = query.history[h];
        RELGRAPH_ASSIGN_OR_RETURN(
            double agg,
            AggregateWindow(history_indexes[h], pk, cutoff - hist.window,
                            cutoff, hist.agg, hist.value_column));
        if (!EvalCompare(hist.op, agg, hist.value)) {
          in_cohort = false;
          break;
        }
      }
      if (!in_cohort) continue;
      if (query.kind == TaskKind::kRanking) {
        RELGRAPH_ASSIGN_OR_RETURN(
            std::vector<int64_t> future_keys,
            CollectWindow(index, pk, cutoff, cutoff + window,
                          query.list_column));
        std::vector<int64_t> target_rows;
        target_rows.reserve(future_keys.size());
        for (int64_t key : future_keys) {
          auto trow = query.ranking_target->FindByPrimaryKey(key);
          if (trow.ok()) target_rows.push_back(trow.value());
        }
        table.target_lists.push_back(std::move(target_rows));
        table.labels.push_back(0.0);
      } else {
        RELGRAPH_ASSIGN_OR_RETURN(
            double agg, AggregateWindow(index, pk, cutoff, cutoff + window,
                                        query.agg, query.value_column));
        double label = agg;
        if (query.parsed.threshold_op) {
          label = EvalCompare(*query.parsed.threshold_op, agg,
                              query.parsed.threshold_value)
                      ? 1.0
                      : 0.0;
        } else if (!query.parsed.bucket_bounds.empty()) {
          // Class k = number of boundaries <= value.
          int64_t cls = 0;
          for (double bound : query.parsed.bucket_bounds) {
            if (agg >= bound) ++cls;
          }
          label = static_cast<double>(cls);
        }
        table.labels.push_back(label);
        table.target_lists.emplace_back();
      }
      table.entity_rows.push_back(r);
      table.cutoffs.push_back(cutoff);
    }
  }
  return table;
}

Result<Split> MakeSplit(const ResolvedQuery& query,
                        const TrainingTable& table,
                        const std::vector<Timestamp>& cutoffs) {
  Timestamp val_start, test_start;
  if (query.parsed.val_start && query.parsed.test_start) {
    val_start = *query.parsed.val_start;
    test_start = *query.parsed.test_start;
  } else {
    // Default: last cutoff tests, second-to-last validates.
    std::vector<Timestamp> distinct = cutoffs;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() < 3) {
      return Status::InvalidArgument(StrFormat(
          "only %zu distinct cutoffs; need >= 3 for train/val/test (shrink "
          "the window or add EVERY)",
          distinct.size()));
    }
    test_start = distinct[distinct.size() - 1];
    val_start = distinct[distinct.size() - 2];
  }
  Split split = SplitByTime(table.cutoffs, val_start, test_start);
  if (split.train.empty() || split.test.empty()) {
    return Status::InvalidArgument(
        "temporal split produced an empty train or test set; adjust SPLIT "
        "AT");
  }
  return split;
}

}  // namespace relgraph

file(REMOVE_RECURSE
  "librelgraph_baselines.a"
)

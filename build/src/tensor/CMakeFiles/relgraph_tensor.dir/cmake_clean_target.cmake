file(REMOVE_RECURSE
  "librelgraph_tensor.a"
)

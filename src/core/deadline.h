#ifndef RELGRAPH_CORE_DEADLINE_H_
#define RELGRAPH_CORE_DEADLINE_H_

// Request deadlines over an injectable monotonic clock.
//
// A `Deadline` is a point on a `Clock`: serving code checks `expired()` at
// stage boundaries (admission, per-subgraph sampling, per micro-batch
// forward) and returns `Status::DeadlineExceeded` instead of running over
// budget. Production uses the process steady clock; tests inject a
// `FakeClock` so expiry is a deterministic function of the test script —
// never of machine load — which is what lets the chaos harness demand
// bit-identical outcomes across runs.

#include <cstdint>
#include <limits>

#include <atomic>

namespace relgraph {

/// Monotonic nanosecond clock interface. Implementations must be
/// thread-safe; `NowNanos` must never decrease.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;

  /// The process-wide steady (monotonic) clock.
  static const Clock* Real();
};

/// Manually driven clock for deterministic deadline tests.
///
/// Time moves only when the test says so: `Advance*` jumps forward, and an
/// optional `auto_advance` step makes every `NowNanos` call tick the clock
/// by a fixed amount — a deterministic stand-in for "work takes time",
/// letting single-threaded tests hit mid-request expiry at an exact,
/// reproducible stage. All state is atomic, so a FakeClock may be shared
/// across threads (though cross-thread tick order is then scheduling-
/// dependent, as real time would be).
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() const override {
    const int64_t step = auto_advance_nanos_.load(std::memory_order_relaxed);
    if (step == 0) return now_.load(std::memory_order_relaxed);
    // Returns the pre-tick time: the first call after construction reads
    // the start time, like a plain clock would.
    return now_.fetch_add(step, std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AdvanceMillis(double millis) {
    AdvanceNanos(static_cast<int64_t>(millis * 1e6));
  }

  /// Every NowNanos() call advances the clock by `nanos` (0 disables).
  void set_auto_advance_nanos(int64_t nanos) {
    auto_advance_nanos_.store(nanos, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_;
  std::atomic<int64_t> auto_advance_nanos_{0};
};

/// An absolute expiry point on a clock. Copyable and cheap: two words.
/// The default-constructed deadline is infinite (never expires), so every
/// pre-resilience call site keeps its old semantics for free.
class Deadline {
 public:
  /// Never expires.
  Deadline() : clock_(Clock::Real()), deadline_ns_(kInfinite) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `millis` from now on `clock` (default: the real clock).
  static Deadline AfterMillis(double millis, const Clock* clock = nullptr);

  /// Expires `nanos` from now on `clock` (default: the real clock).
  static Deadline AfterNanos(int64_t nanos, const Clock* clock = nullptr);

  /// Expires at the absolute clock reading `deadline_nanos`.
  static Deadline AtNanos(int64_t deadline_nanos,
                          const Clock* clock = nullptr);

  bool is_infinite() const { return deadline_ns_ == kInfinite; }

  /// True once the clock has reached the expiry point. Infinite deadlines
  /// never expire and never read the clock.
  bool expired() const {
    if (is_infinite()) return false;
    return clock_->NowNanos() >= deadline_ns_;
  }

  /// Nanoseconds until expiry (<= 0 once expired); INT64_MAX if infinite.
  int64_t remaining_nanos() const {
    if (is_infinite()) return kInfinite;
    return deadline_ns_ - clock_->NowNanos();
  }

  double remaining_millis() const {
    if (is_infinite()) return std::numeric_limits<double>::infinity();
    return static_cast<double>(remaining_nanos()) / 1e6;
  }

  const Clock* clock() const { return clock_; }

  /// The deadline that expires first / last of the two, compared by
  /// remaining budget on each deadline's own clock (callers normally
  /// combine deadlines sharing one clock; across clocks this compares
  /// remaining time, the only meaningful common currency). An infinite
  /// deadline loses EarlierOf and wins LaterOf. The coalescing scheduler
  /// uses LaterOf to run a shared micro-batch under the most generous
  /// member budget and refuses late members individually afterwards.
  static Deadline EarlierOf(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return b;
    if (b.is_infinite()) return a;
    return a.remaining_nanos() <= b.remaining_nanos() ? a : b;
  }
  static Deadline LaterOf(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return a;
    if (b.is_infinite()) return b;
    return a.remaining_nanos() >= b.remaining_nanos() ? a : b;
  }

 private:
  static constexpr int64_t kInfinite =
      std::numeric_limits<int64_t>::max();

  Deadline(const Clock* clock, int64_t deadline_ns)
      : clock_(clock), deadline_ns_(deadline_ns) {}

  const Clock* clock_;
  int64_t deadline_ns_;
};

}  // namespace relgraph

#endif  // RELGRAPH_CORE_DEADLINE_H_

#include "core/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "core/atomic_io.h"
#include "core/string_util.h"

namespace relgraph {

namespace {

// -1 = uninitialized (read RELGRAPH_METRICS on first use), else 0/1.
std::atomic<int> g_metrics_enabled{-1};

int ReadEnabledFromEnv() {
  const char* env = std::getenv("RELGRAPH_METRICS");
  if (env == nullptr) return 1;
  const std::string v = ToLower(env);
  return (v == "0" || v == "false" || v == "off" || v == "no") ? 0 : 1;
}

/// Round-trippable number rendering shared by both exporters: integers
/// print without a decimal point, everything else as %.17g.
std::string FormatMetricValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

bool HasPrefix(std::string_view name, std::string_view prefix) {
  return prefix.empty() || name.substr(0, prefix.size()) == prefix;
}

}  // namespace

bool MetricsEnabled() {
  int v = g_metrics_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ReadEnabledFromEnv();
    g_metrics_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::bucket_count(size_t i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::ResetForTesting() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000};
  return kBuckets;
}

const std::vector<double>& FineLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 500};
  return kBuckets;
}

const std::vector<double>& BatchRowBuckets() {
  static const std::vector<double> kBuckets = {1,  2,   4,   8,   16,  32,
                                               64, 128, 256, 512, 1024};
  return kBuckets;
}

// -------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::DumpText(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    if (!HasPrefix(name, prefix)) continue;
    out += StrFormat("counter %s %lld\n", name.c_str(),
                     static_cast<long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    if (!HasPrefix(name, prefix)) continue;
    out += StrFormat("gauge %s %s\n", name.c_str(),
                     FormatMetricValue(g->value()).c_str());
  }
  for (const auto& [name, h] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    out += StrFormat("histogram %s count=%lld sum=%s", name.c_str(),
                     static_cast<long long>(h->count()),
                     FormatMetricValue(h->sum()).c_str());
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      out += StrFormat(" le%s=%lld",
                       FormatMetricValue(h->bounds()[i]).c_str(),
                       static_cast<long long>(h->bucket_count(i)));
    }
    out += StrFormat(" leinf=%lld\n", static_cast<long long>(
                                          h->bucket_count(
                                              h->bounds().size())));
  }
  return out;
}

std::string MetricsRegistry::DumpJson(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!HasPrefix(name, prefix)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %lld", name.c_str(),
                     static_cast<long long>(c->value()));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!HasPrefix(name, prefix)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %s", name.c_str(),
                     FormatMetricValue(g->value()).c_str());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!HasPrefix(name, prefix)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": {\"count\": %lld, \"sum\": %s, "
                     "\"buckets\": [",
                     name.c_str(), static_cast<long long>(h->count()),
                     FormatMetricValue(h->sum()).c_str());
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("{\"le\": %s, \"count\": %lld}",
                       FormatMetricValue(h->bounds()[i]).c_str(),
                       static_cast<long long>(h->bucket_count(i)));
    }
    if (!h->bounds().empty()) out += ", ";
    out += StrFormat("{\"le\": \"inf\", \"count\": %lld}]}",
                     static_cast<long long>(
                         h->bucket_count(h->bounds().size())));
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTesting();
  for (auto& [name, g] : gauges_) g->ResetForTesting();
  for (auto& [name, h] : histograms_) h->ResetForTesting();
}

std::string DumpMetricsText(std::string_view prefix) {
  return MetricsRegistry::Global().DumpText(prefix);
}

std::string DumpMetricsJson(std::string_view prefix) {
  return MetricsRegistry::Global().DumpJson(prefix);
}

Status WriteMetricsJson(const std::string& path, std::string_view prefix) {
  return AtomicWriteFile(path, DumpMetricsJson(prefix));
}

}  // namespace relgraph

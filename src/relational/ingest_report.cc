#include "relational/ingest_report.h"

#include "core/string_util.h"

namespace relgraph {

std::string TableIngestReport::ToString() const {
  if (TotalIssues() == 0 && rows_quarantined == 0) return "";
  std::string out = StrFormat(
      "table '%s': %lld rows loaded, %lld quarantined", table.c_str(),
      static_cast<long long>(rows_loaded),
      static_cast<long long>(rows_quarantined));
  auto count = [&out](const char* label, int64_t n) {
    if (n > 0) out += StrFormat("\n  %-24s %lld", label,
                                static_cast<long long>(n));
  };
  count("malformed cells", malformed_cells);
  count("duplicate PKs", duplicate_pks);
  count("null PKs", null_pks);
  count("out-of-range timestamps", out_of_range_timestamps);
  count("out-of-order timestamps", out_of_order_timestamps);
  count("constraint violations", constraint_violations);
  count("dangling FKs", dangling_fks);
  for (const QuarantinedRow& q : examples) {
    out += StrFormat("\n  row %lld%s%s: %s",
                     static_cast<long long>(q.row),
                     q.column.empty() ? "" : " column ",
                     q.column.c_str(), q.reason.c_str());
  }
  return out;
}

int64_t DatabaseIntegrityReport::TotalIssues() const {
  int64_t total = 0;
  for (const TableIngestReport& t : tables) total += t.TotalIssues();
  return total;
}

std::string DatabaseIntegrityReport::ToString() const {
  if (clean()) return "database integrity: clean";
  std::string out = StrFormat("database integrity: %lld issue(s)",
                              static_cast<long long>(TotalIssues()));
  for (const TableIngestReport& t : tables) {
    const std::string table_str = t.ToString();
    if (!table_str.empty()) out += "\n" + table_str;
  }
  return out;
}

}  // namespace relgraph

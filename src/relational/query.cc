#include "relational/query.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/string_util.h"

namespace relgraph {

Result<AggKind> ParseAggKind(std::string_view name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggKind::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggKind::kSum;
  if (EqualsIgnoreCase(name, "AVG")) return AggKind::kAvg;
  if (EqualsIgnoreCase(name, "MIN")) return AggKind::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggKind::kMax;
  if (EqualsIgnoreCase(name, "EXISTS")) return AggKind::kExists;
  return Status::ParseError("unknown aggregate: " + std::string(name));
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kExists:
      return "EXISTS";
  }
  return "?";
}

Result<FkIndex> FkIndex::Build(const Table& child,
                               const std::string& fk_column) {
  FkIndex out;
  out.child_ = &child;
  const Column* col = child.FindColumnPtr(fk_column);
  if (col == nullptr) {
    return Status::NotFound(StrFormat("FK column '%s' not in table '%s'",
                                      fk_column.c_str(),
                                      child.name().c_str()));
  }
  if (col->type() != DataType::kInt64) {
    return Status::InvalidArgument(
        StrFormat("FK column '%s' must be INT64", fk_column.c_str()));
  }
  for (int64_t r = 0; r < child.num_rows(); ++r) {
    if (col->IsNull(r)) continue;
    out.index_[col->Int(r)].push_back(r);
  }
  // Sort each posting list by event time; static rows (kNoTimestamp ==
  // INT64_MIN) naturally sort first.
  for (auto& [key, rows] : out.index_) {
    std::stable_sort(rows.begin(), rows.end(), [&child](int64_t a, int64_t b) {
      return child.RowTime(a) < child.RowTime(b);
    });
  }
  return out;
}

const std::vector<int64_t>& FkIndex::Rows(int64_t fk_value) const {
  auto it = index_.find(fk_value);
  return it == index_.end() ? empty_ : it->second;
}

std::vector<int64_t> FkIndex::RowsInWindow(int64_t fk_value, Timestamp start,
                                           Timestamp end) const {
  std::vector<int64_t> out;
  for (int64_t r : Rows(fk_value)) {
    const Timestamp t = child_->RowTime(r);
    if (t == kNoTimestamp || (t >= start && t < end)) out.push_back(r);
  }
  return out;
}

Result<double> AggregateWindow(const FkIndex& index, int64_t fk_value,
                               Timestamp start, Timestamp end, AggKind kind,
                               const std::string& value_column,
                               const std::function<bool(int64_t)>* row_filter) {
  const Table& child = index.child();
  const Column* col = nullptr;
  if (kind != AggKind::kCount && kind != AggKind::kExists) {
    col = child.FindColumnPtr(value_column);
    if (col == nullptr) {
      return Status::NotFound(StrFormat(
          "aggregate column '%s' not in table '%s'", value_column.c_str(),
          child.name().c_str()));
    }
    if (!col->IsNumericType()) {
      return Status::InvalidArgument(StrFormat(
          "aggregate column '%s' is not numeric", value_column.c_str()));
    }
  }
  int64_t count = 0;
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (int64_t r : index.Rows(fk_value)) {
    const Timestamp t = child.RowTime(r);
    if (t != kNoTimestamp && (t < start || t >= end)) continue;
    if (row_filter != nullptr && !(*row_filter)(r)) continue;
    if (col != nullptr) {
      if (col->IsNull(r)) continue;
      const double v = col->Numeric(r);
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    ++count;
    if (kind == AggKind::kExists) return 1.0;
  }
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(count);
    case AggKind::kExists:
      return 0.0;
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    case AggKind::kMin:
      return count > 0 ? mn : 0.0;
    case AggKind::kMax:
      return count > 0 ? mx : 0.0;
  }
  return Status::Internal("unreachable aggregate kind");
}

Result<std::vector<int64_t>> CollectWindow(const FkIndex& index,
                                           int64_t fk_value, Timestamp start,
                                           Timestamp end,
                                           const std::string& column) {
  const Table& child = index.child();
  const Column* col = child.FindColumnPtr(column);
  if (col == nullptr) {
    return Status::NotFound(StrFormat("collect column '%s' not in table '%s'",
                                      column.c_str(), child.name().c_str()));
  }
  if (col->type() != DataType::kInt64) {
    return Status::InvalidArgument(
        StrFormat("collect column '%s' must be INT64", column.c_str()));
  }
  std::vector<int64_t> out;
  std::unordered_set<int64_t> seen;
  for (int64_t r : index.Rows(fk_value)) {
    const Timestamp t = child.RowTime(r);
    if (t != kNoTimestamp && (t < start || t >= end)) continue;
    if (col->IsNull(r)) continue;
    const int64_t v = col->Int(r);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

std::vector<int64_t> FilterRows(const Table& table,
                                const std::function<bool(int64_t)>& pred) {
  std::vector<int64_t> out;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

}  // namespace relgraph

#include "core/status.h"

#include <cstdio>
#include <cstdlib>

namespace relgraph {

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() called on errored result: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace relgraph

#ifndef RELGRAPH_CORE_STATUS_H_
#define RELGRAPH_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace relgraph {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kOverloaded,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value used across all public fallible APIs.
///
/// RelGraph follows the Arrow/RocksDB convention of returning `Status`
/// (or `Result<T>`) instead of throwing exceptions across API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {

/// Prints the status and aborts; out-of-line so Result<T> stays light.
[[noreturn]] void DieOnBadResultAccess(const Status& status);

}  // namespace internal

/// A value of type T or an error `Status`.
///
/// Access the value only after checking `ok()`; accessing the value of an
/// errored result hard-aborts with the status message in every build mode
/// (silent UB in release builds would let a corrupted artifact poison
/// downstream state).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) internal::DieOnBadResultAccess(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal::DieOnBadResultAccess(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal::DieOnBadResultAccess(status_);
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace relgraph

/// Propagates a non-OK status out of the enclosing function.
#define RELGRAPH_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::relgraph::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (0)

#define RELGRAPH_INTERNAL_CONCAT_(a, b) a##b
#define RELGRAPH_INTERNAL_CONCAT(a, b) RELGRAPH_INTERNAL_CONCAT_(a, b)

#define RELGRAPH_INTERNAL_ASSIGN_OR_RETURN_(tmp, lhs, expr) \
  auto tmp = (expr);                                        \
  if (!tmp.ok()) return tmp.status();                       \
  lhs = std::move(tmp).value();

/// Assigns the value of a Result<T> expression or propagates its error.
#define RELGRAPH_ASSIGN_OR_RETURN(lhs, expr)                        \
  RELGRAPH_INTERNAL_ASSIGN_OR_RETURN_(                              \
      RELGRAPH_INTERNAL_CONCAT(_relgraph_res_, __LINE__), lhs, expr)

#endif  // RELGRAPH_CORE_STATUS_H_

#include "train/trainer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "core/atomic_io.h"
#include "core/fault_injection.h"
#include "core/logging.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/string_util.h"
#include "core/timer.h"
#include "core/trace.h"
#include "tensor/serialize.h"
#include "train/metrics.h"

namespace relgraph {

GnnNodePredictor::GnnNodePredictor(const HeteroGraph* graph,
                                   NodeTypeId entity_type, TaskKind kind,
                                   int64_t num_classes,
                                   const GnnConfig& gnn_config,
                                   const SamplerOptions& sampler_options,
                                   const TrainerConfig& trainer_config)
    : graph_(graph),
      entity_type_(entity_type),
      kind_(kind),
      num_classes_(num_classes),
      trainer_config_(trainer_config),
      sampler_(graph, sampler_options),
      rng_(trainer_config.seed) {
  RELGRAPH_CHECK(kind_ != TaskKind::kRanking)
      << "use GnnRecommender for ranking tasks";
  RELGRAPH_CHECK(static_cast<int64_t>(sampler_options.fanouts.size()) ==
                 gnn_config.num_layers)
      << "sampler depth must match GNN layers";
  model_ = std::make_unique<HeteroSageModel>(graph, gnn_config, &rng_);
  if (kind_ == TaskKind::kMulticlassClassification) {
    cls_head_ = std::make_unique<ClassificationHead>(gnn_config.hidden_dim,
                                                     num_classes_, &rng_);
  } else {
    scalar_head_ = std::make_unique<ScalarHead>(gnn_config.hidden_dim, &rng_);
  }
}

VarPtr GnnNodePredictor::ForwardBatch(const TrainingTable& table,
                                      const std::vector<int64_t>& indices,
                                      Rng* rng, bool training) {
  std::vector<int64_t> seeds;
  std::vector<Timestamp> cutoffs;
  seeds.reserve(indices.size());
  for (int64_t i : indices) {
    seeds.push_back(table.entity_rows[static_cast<size_t>(i)]);
    cutoffs.push_back(table.cutoffs[static_cast<size_t>(i)]);
  }
  Subgraph sg = sampler_.Sample(entity_type_, seeds, cutoffs, rng);
  return ForwardSampled(sg, rng, training);
}

VarPtr GnnNodePredictor::ForwardSampled(const Subgraph& sg, Rng* rng,
                                        bool training) {
  VarPtr emb = model_->Forward(sg, entity_type_, rng, training);
  if (cls_head_) return cls_head_->Forward(emb);
  return scalar_head_->Forward(emb);
}

std::vector<Tensor> GnnNodePredictor::SnapshotParams() const {
  const Module* head =
      cls_head_ ? static_cast<const Module*>(cls_head_.get())
                : static_cast<const Module*>(scalar_head_.get());
  return ParameterValues({model_.get(), head});
}

void GnnNodePredictor::RestoreParams(const std::vector<Tensor>& snapshot) {
  const Module* head =
      cls_head_ ? static_cast<const Module*>(cls_head_.get())
                : static_cast<const Module*>(scalar_head_.get());
  AssignParameterValues({model_.get(), head}, snapshot);
}

Status GnnNodePredictor::Fit(const TrainingTable& table, const Split& split) {
  RELGRAPH_TRACE_SPAN("train/fit");
  Timer fit_timer;
  epoch_val_metrics_.clear();
  prefetch_stalls_ = 0;
  checkpoint_writes_ = 0;
  if (split.train.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  if (kind_ == TaskKind::kRegression) {
    double sum = 0, sum_sq = 0;
    for (int64_t i : split.train) {
      sum += table.labels[static_cast<size_t>(i)];
      sum_sq += table.labels[static_cast<size_t>(i)] *
                table.labels[static_cast<size_t>(i)];
    }
    const double n = static_cast<double>(split.train.size());
    label_mean_ = sum / n;
    const double var = sum_sq / n - label_mean_ * label_mean_;
    label_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  std::vector<VarPtr> params = model_->Parameters();
  {
    const Module* head =
        cls_head_ ? static_cast<const Module*>(cls_head_.get())
                  : static_cast<const Module*>(scalar_head_.get());
    for (const auto& p : head->Parameters()) params.push_back(p);
  }
  Adam opt(params, trainer_config_.lr, 0.9f, 0.999f, 1e-8f,
           trainer_config_.weight_decay);

  const std::vector<int64_t>& val_idx =
      split.val.empty() ? split.train : split.val;
  std::vector<Tensor> best = SnapshotParams();
  best_val_metric_ = -1e30;
  int64_t stale = 0;
  int64_t start_epoch = 0;
  int64_t retries = 0;
  divergence_episodes_ = 0;
  resumed_from_epoch_ = -1;

  const std::string& ckpt = trainer_config_.checkpoint_path;
  if (!ckpt.empty() && trainer_config_.resume && FileExists(ckpt)) {
    TrainState ts;
    RELGRAPH_RETURN_IF_ERROR(LoadTrainCheckpoint(ckpt, &opt, &ts));
    best = std::move(ts.best);
    best_val_metric_ = ts.best_val;
    stale = ts.stale;
    retries = ts.retries;
    start_epoch = ts.next_epoch;
    resumed_from_epoch_ = start_epoch;
    rng_.SetState(ts.rng);
    opt.set_lr(ts.lr);
    RELGRAPH_COUNTER_INC("fit_resumes_total");
    if (trainer_config_.verbose) {
      RELGRAPH_LOG(Info) << "resumed from checkpoint " << ckpt
                         << " at epoch " << start_epoch << " (best val "
                         << best_val_metric_ << ")";
    }
  }

  // Last finite epoch boundary, for divergence rollback.
  TrainState good;
  good.params = SnapshotParams();
  good.best = best;
  good.opt = opt.GetState();
  good.rng = rng_.GetState();
  good.best_val = best_val_metric_;
  good.stale = stale;
  good.lr = opt.lr();

  FaultInjector& faults = FaultInjector::Global();
  epoch_losses_.clear();
#ifndef RELGRAPH_NO_METRICS
  // Resolved once per Fit: the per-batch paths below must stay at one
  // pointer check each, and the observability switch must not flip
  // mid-run.
  const bool metrics_on = MetricsEnabled();
  Histogram* batch_ms_hist =
      metrics_on ? MetricsRegistry::Global().GetHistogram(
                       "fit_batch_ms", LatencyBucketsMs())
                 : nullptr;
#else
  const bool metrics_on = false;
#endif
  (void)metrics_on;
  for (int64_t epoch = start_epoch; epoch < trainer_config_.epochs; ++epoch) {
    RELGRAPH_TRACE_SPAN("train/epoch");
    // Shuffled mini-batches over the training split.
    auto batches = MakeBatches(static_cast<int64_t>(split.train.size()),
                               trainer_config_.batch_size, &rng_);
    // Sampling draws from per-batch streams forked off one epoch seed, so
    // batch k+1 can be sampled on the pool while batch k trains (which
    // keeps drawing from rng_ on this thread) with a result that is
    // independent of overlap and thread count. rng_ advances by exactly
    // one draw here, keeping checkpoint/resume semantics intact.
    Rng epoch_sample_rng = rng_.Split();
    auto prepare = [&](size_t bk) {
      SampledBatch prepared;
      const auto& batch_pos = batches[bk];
      prepared.batch.reserve(batch_pos.size());
      std::vector<int64_t> seeds;
      std::vector<Timestamp> seed_cutoffs;
      seeds.reserve(batch_pos.size());
      seed_cutoffs.reserve(batch_pos.size());
      for (int64_t bp : batch_pos) {
        const int64_t row = split.train[static_cast<size_t>(bp)];
        prepared.batch.push_back(row);
        seeds.push_back(table.entity_rows[static_cast<size_t>(row)]);
        seed_cutoffs.push_back(table.cutoffs[static_cast<size_t>(row)]);
      }
      Rng sample_rng = epoch_sample_rng.Fork(static_cast<uint64_t>(bk));
      prepared.sg =
          sampler_.Sample(entity_type_, seeds, seed_cutoffs, &sample_rng);
      return prepared;
    };
    double epoch_loss = 0.0;
    bool diverged = false;
    std::future<SampledBatch> pending;
    for (size_t bk = 0; bk < batches.size(); ++bk) {
      SampledBatch cur;
      if (bk == 0) {
        cur = prepare(0);
      } else {
#ifndef RELGRAPH_NO_METRICS
        // Non-blocking probe, taken only under the observability switch;
        // the subsequent get() waits identically either way, so training
        // results cannot depend on it.
        if (metrics_on && pending.wait_for(std::chrono::seconds(0)) !=
                              std::future_status::ready) {
          ++prefetch_stalls_;
          RELGRAPH_COUNTER_INC("fit_prefetch_stalls_total");
        }
#endif
        cur = pending.get();
      }
      Timer batch_timer;
      if (bk + 1 < batches.size()) {
        // One-batch-deep prefetch: sample the next batch on the pool
        // while this one trains.
        pending = Async([&prepare, bk] { return prepare(bk + 1); });
      }
      const std::vector<int64_t>& batch = cur.batch;
      opt.ZeroGrad();
      VarPtr out = ForwardSampled(cur.sg, &rng_, /*training=*/true);
      VarPtr loss;
      switch (kind_) {
        case TaskKind::kBinaryClassification: {
          Tensor targets(static_cast<int64_t>(batch.size()), 1);
          for (size_t i = 0; i < batch.size(); ++i) {
            targets.at(static_cast<int64_t>(i), 0) = static_cast<float>(
                table.labels[static_cast<size_t>(batch[i])]);
          }
          loss = ag::BinaryCrossEntropyWithLogits(out, targets);
          break;
        }
        case TaskKind::kMulticlassClassification: {
          std::vector<int64_t> labels;
          labels.reserve(batch.size());
          for (int64_t i : batch) {
            labels.push_back(static_cast<int64_t>(
                table.labels[static_cast<size_t>(i)]));
          }
          loss = ag::SoftmaxCrossEntropy(out, labels);
          break;
        }
        case TaskKind::kRegression: {
          Tensor targets(static_cast<int64_t>(batch.size()), 1);
          for (size_t i = 0; i < batch.size(); ++i) {
            targets.at(static_cast<int64_t>(i), 0) = static_cast<float>(
                (table.labels[static_cast<size_t>(batch[i])] - label_mean_) /
                label_std_);
          }
          loss = ag::MseLoss(out, targets);
          break;
        }
        case TaskKind::kRanking:
          return Status::Internal("unreachable");
      }
      if (faults.ShouldFire(FaultSite::kNanLoss)) {
        loss->mutable_value().at(0, 0) =
            std::numeric_limits<float>::quiet_NaN();
      }
      const double batch_loss = loss->value().item();
      Backward(loss);
      if (faults.ShouldFire(FaultSite::kNanGradient)) {
        params.front()->grad().data()[0] =
            std::numeric_limits<float>::quiet_NaN();
      }
      const float grad_norm = opt.ClipGradNorm(trainer_config_.clip_norm);
      // Divergence gate: never step through a non-finite loss or gradient,
      // so the weights stay at their last finite values.
      if (!std::isfinite(batch_loss) || !std::isfinite(grad_norm)) {
        diverged = true;
        break;
      }
      opt.Step();
      epoch_loss += batch_loss * static_cast<double>(batch.size());
      RELGRAPH_COUNTER_INC("fit_batches_total");
#ifndef RELGRAPH_NO_METRICS
      if (batch_ms_hist != nullptr) {
        batch_ms_hist->Observe(batch_timer.Millis());
      }
#endif
    }
    // Drain the pipeline: a subgraph prefetched for a batch we will not
    // train (divergence rollback or early stop) is simply discarded —
    // its RNG stream was independent, so nothing else shifts.
    if (pending.valid()) pending.get();
    if (diverged) {
      ++divergence_episodes_;
      RELGRAPH_COUNTER_INC("fit_divergence_rollbacks_total");
      if (++retries > trainer_config_.max_divergence_retries) {
        return Status::FailedPrecondition(StrFormat(
            "training diverged: non-finite loss or gradient norm persisted "
            "through %lld rollback + LR-halving attempts (epoch %lld, lr "
            "%.3g); weights left at the last finite state",
            static_cast<long long>(trainer_config_.max_divergence_retries),
            static_cast<long long>(epoch), static_cast<double>(opt.lr())));
      }
      // Roll back to the last good epoch boundary and retry at a lower LR.
      RestoreParams(good.params);
      best = good.best;
      RELGRAPH_RETURN_IF_ERROR(opt.SetState(good.opt));
      rng_.SetState(good.rng);
      best_val_metric_ = good.best_val;
      stale = good.stale;
      const float new_lr = good.lr * trainer_config_.divergence_lr_decay;
      opt.set_lr(new_lr);
      good.lr = new_lr;
      RELGRAPH_LOG(Warning)
          << "non-finite loss/gradient at epoch " << epoch
          << "; rolled back and halved lr to " << new_lr << " (attempt "
          << retries << "/" << trainer_config_.max_divergence_retries << ")";
      --epoch;
      continue;
    }
    epoch_loss /= static_cast<double>(split.train.size());
    epoch_losses_.push_back(epoch_loss);
    RELGRAPH_COUNTER_INC("fit_epochs_total");
    const double val_metric = Evaluate(table, val_idx);
    epoch_val_metrics_.push_back(val_metric);
    if (trainer_config_.verbose) {
      RELGRAPH_LOG(Info) << "epoch " << epoch << " loss " << epoch_loss
                         << " val " << val_metric;
    }
    bool stop = false;
    if (val_metric > best_val_metric_ + 1e-6) {
      best_val_metric_ = val_metric;
      best = SnapshotParams();
      stale = 0;
    } else if (trainer_config_.patience > 0 &&
               ++stale >= trainer_config_.patience) {
      stop = true;
    }
    good.params = SnapshotParams();
    good.best = best;
    good.opt = opt.GetState();
    good.rng = rng_.GetState();
    good.best_val = best_val_metric_;
    good.stale = stale;
    good.lr = opt.lr();
    const int64_t every = std::max<int64_t>(1, trainer_config_.checkpoint_every);
    if (!ckpt.empty() &&
        (stop || (epoch + 1) % every == 0 ||
         epoch + 1 == trainer_config_.epochs)) {
      TrainState ts = good;
      ts.next_epoch = stop ? trainer_config_.epochs : epoch + 1;
      ts.retries = retries;
      RELGRAPH_RETURN_IF_ERROR(SaveTrainCheckpoint(ckpt, ts));
      ++checkpoint_writes_;
      RELGRAPH_COUNTER_INC("fit_checkpoint_writes_total");
    }
    if (stop) break;
  }
  RestoreParams(best);
  // Per-run report, written after every checkpoint so a fault-injected
  // checkpoint failure surfaces first. Best-effort: training succeeded,
  // so a report-write failure only warns.
  std::string report_path = trainer_config_.run_report_path;
  if (report_path.empty() && !ckpt.empty()) {
    report_path = ckpt + ".run_report.json";
  }
  if (!report_path.empty()) {
    const Status report_status =
        AtomicWriteFile(report_path, RunReportJson(fit_timer.Seconds()));
    if (!report_status.ok()) {
      RELGRAPH_LOG(Warning) << "run report write failed ("
                            << report_path
                            << "): " << report_status.message();
    }
  }
  return Status::OK();
}

std::string GnnNodePredictor::RunReportJson(double fit_seconds) const {
  std::string out = "{\n";
  out += StrFormat("  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(trainer_config_.seed));
  out += StrFormat("  \"task\": \"%s\",\n", TaskKindName(kind_));
  out += StrFormat("  \"epochs_configured\": %lld,\n",
                   static_cast<long long>(trainer_config_.epochs));
  out += StrFormat("  \"epochs_completed\": %zu,\n", epoch_losses_.size());
  out += StrFormat("  \"resumed_from_epoch\": %lld,\n",
                   static_cast<long long>(resumed_from_epoch_));
  out += StrFormat("  \"divergence_episodes\": %lld,\n",
                   static_cast<long long>(divergence_episodes_));
  out += StrFormat("  \"prefetch_stalls\": %lld,\n",
                   static_cast<long long>(prefetch_stalls_));
  out += StrFormat("  \"checkpoint_writes\": %lld,\n",
                   static_cast<long long>(checkpoint_writes_));
  out += StrFormat("  \"best_val_metric\": %.17g,\n", best_val_metric_);
  // The epochs array is the deterministic heart of the report: %.17g
  // round-trips doubles exactly, and the recorded losses/metrics are
  // bit-identical across thread counts. Golden tests compare it verbatim.
  const int64_t first_epoch = resumed_from_epoch_ >= 0
                                  ? resumed_from_epoch_
                                  : 0;
  out += "  \"epochs\": [";
  for (size_t i = 0; i < epoch_losses_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const double val = i < epoch_val_metrics_.size()
                           ? epoch_val_metrics_[i]
                           : 0.0;
    out += StrFormat(
        "    {\"epoch\": %lld, \"loss\": %.17g, \"val\": %.17g}",
        static_cast<long long>(first_epoch + static_cast<int64_t>(i)),
        epoch_losses_[i], val);
  }
  out += epoch_losses_.empty() ? "],\n" : "\n  ],\n";
  out += StrFormat("  \"fit_seconds\": %.6f\n", fit_seconds);
  out += "}\n";
  return out;
}

namespace {

constexpr double kCheckpointVersion = 1.0;

}  // namespace

Status GnnNodePredictor::SaveTrainCheckpoint(const std::string& path,
                                             const TrainState& state) const {
  const size_t num_params = state.params.size();
  std::vector<Tensor> tensors;
  tensors.reserve(4 * num_params);
  for (const Tensor& t : state.params) tensors.push_back(t);
  for (const Tensor& t : state.best) tensors.push_back(t);
  for (const Tensor& t : state.opt.m) tensors.push_back(t);
  for (const Tensor& t : state.opt.v) tensors.push_back(t);
  std::vector<double> scalars = {
      kCheckpointVersion,
      static_cast<double>(state.next_epoch),
      static_cast<double>(state.opt.t),
      static_cast<double>(state.lr),
      state.best_val,
      static_cast<double>(state.stale),
      static_cast<double>(state.retries),
      label_mean_,
      label_std_,
      std::bit_cast<double>(state.rng[0]),
      std::bit_cast<double>(state.rng[1]),
      std::bit_cast<double>(state.rng[2]),
      std::bit_cast<double>(state.rng[3]),
      static_cast<double>(num_params),
  };
  return SaveTensorBundle(path, tensors, scalars);
}

Status GnnNodePredictor::LoadTrainCheckpoint(const std::string& path,
                                             Adam* opt, TrainState* state) {
  RELGRAPH_ASSIGN_OR_RETURN(TensorBundle bundle, LoadTensorBundle(path));
  if (bundle.scalars.size() != 14 ||
      bundle.scalars[0] != kCheckpointVersion) {
    return Status::ParseError("unrecognized training-checkpoint layout: " +
                              path);
  }
  const size_t num_params = static_cast<size_t>(bundle.scalars[13]);
  const std::vector<Tensor> current = SnapshotParams();
  if (num_params != current.size() ||
      bundle.tensors.size() != 4 * num_params) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu parameter tensors, model has %zu (architecture "
        "mismatch?)",
        num_params, current.size()));
  }
  for (size_t i = 0; i < num_params; ++i) {
    for (size_t block = 0; block < 4; ++block) {
      if (!bundle.tensors[block * num_params + i].SameShape(current[i])) {
        return Status::InvalidArgument(StrFormat(
            "checkpoint tensor %zu (block %zu) shape mismatch", i, block));
      }
    }
  }
  state->next_epoch = static_cast<int64_t>(bundle.scalars[1]);
  state->opt.t = static_cast<int64_t>(bundle.scalars[2]);
  state->lr = static_cast<float>(bundle.scalars[3]);
  state->best_val = bundle.scalars[4];
  state->stale = static_cast<int64_t>(bundle.scalars[5]);
  state->retries = static_cast<int64_t>(bundle.scalars[6]);
  label_mean_ = bundle.scalars[7];
  label_std_ = bundle.scalars[8];
  for (size_t i = 0; i < 4; ++i) {
    state->rng[i] = std::bit_cast<uint64_t>(bundle.scalars[9 + i]);
  }
  auto block = [&](size_t b) {
    return std::vector<Tensor>(
        bundle.tensors.begin() + static_cast<int64_t>(b * num_params),
        bundle.tensors.begin() + static_cast<int64_t>((b + 1) * num_params));
  };
  RestoreParams(block(0));
  state->best = block(1);
  state->opt.m = block(2);
  state->opt.v = block(3);
  return opt->SetState(state->opt);
}

std::vector<double> GnnNodePredictor::PredictScores(
    const TrainingTable& table, const std::vector<int64_t>& indices) {
  RELGRAPH_TRACE_SPAN("train/predict");
  RELGRAPH_COUNTER_ADD("predict_examples_total",
                       static_cast<int64_t>(indices.size()));
  std::vector<double> scores;
  scores.reserve(indices.size());
  // Deterministic inference: unshuffled batches, no dropout, and sampling
  // from a fixed stream derived from the trainer seed — predictions never
  // depend on how far the training RNG has advanced.
  Rng eval_rng(trainer_config_.seed ^ 0xE7037ED1A0B428DBULL);
  for (size_t start = 0; start < indices.size();
       start += static_cast<size_t>(trainer_config_.batch_size)) {
    const size_t end = std::min(
        indices.size(), start + static_cast<size_t>(
                                    trainer_config_.batch_size));
    std::vector<int64_t> batch(indices.begin() + static_cast<int64_t>(start),
                               indices.begin() + static_cast<int64_t>(end));
    VarPtr out = ForwardBatch(table, batch, &eval_rng, /*training=*/false);
    for (int64_t r = 0; r < out->rows(); ++r) {
      switch (kind_) {
        case TaskKind::kBinaryClassification:
          scores.push_back(1.0 /
                           (1.0 + std::exp(-out->value().at(r, 0))));
          break;
        case TaskKind::kRegression:
          scores.push_back(out->value().at(r, 0) * label_std_ + label_mean_);
          break;
        case TaskKind::kMulticlassClassification: {
          // Score = probability of class 1 is meaningless here; return the
          // max-class index as a double for convenience.
          int64_t arg = 0;
          for (int64_t c = 1; c < out->cols(); ++c) {
            if (out->value().at(r, c) > out->value().at(r, arg)) arg = c;
          }
          scores.push_back(static_cast<double>(arg));
          break;
        }
        case TaskKind::kRanking:
          break;
      }
    }
  }
  return scores;
}

std::vector<int64_t> GnnNodePredictor::PredictClasses(
    const TrainingTable& table, const std::vector<int64_t>& indices) {
  std::vector<double> scores = PredictScores(table, indices);
  std::vector<int64_t> classes;
  classes.reserve(scores.size());
  for (double s : scores) {
    if (kind_ == TaskKind::kBinaryClassification) {
      classes.push_back(s >= 0.5 ? 1 : 0);
    } else {
      classes.push_back(static_cast<int64_t>(s));
    }
  }
  return classes;
}

double GnnNodePredictor::Evaluate(const TrainingTable& table,
                                  const std::vector<int64_t>& indices) {
  if (indices.empty()) return 0.0;
  std::vector<double> truth;
  truth.reserve(indices.size());
  for (int64_t i : indices) {
    truth.push_back(table.labels[static_cast<size_t>(i)]);
  }
  switch (kind_) {
    case TaskKind::kBinaryClassification:
      return RocAuc(PredictScores(table, indices), truth);
    case TaskKind::kMulticlassClassification:
      return MulticlassAccuracy(PredictClasses(table, indices), truth);
    case TaskKind::kRegression:
      return -MeanAbsoluteError(PredictScores(table, indices), truth);
    case TaskKind::kRanking:
      break;
  }
  return 0.0;
}

Status GnnNodePredictor::SaveWeights(const std::string& path) const {
  return SaveTensorBundle(path, SnapshotParams(),
                          {label_mean_, label_std_, best_val_metric_});
}

Status GnnNodePredictor::LoadWeights(const std::string& path) {
  RELGRAPH_ASSIGN_OR_RETURN(TensorBundle bundle, LoadTensorBundle(path));
  std::vector<Tensor> current = SnapshotParams();
  if (bundle.tensors.size() != current.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu tensors, model has %zu (architecture "
        "mismatch?)",
        bundle.tensors.size(), current.size()));
  }
  for (size_t i = 0; i < current.size(); ++i) {
    if (!bundle.tensors[i].SameShape(current[i])) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint tensor %zu shape mismatch (%lld x %lld vs "
          "%lld x %lld)",
          i, static_cast<long long>(bundle.tensors[i].rows()),
          static_cast<long long>(bundle.tensors[i].cols()),
          static_cast<long long>(current[i].rows()),
          static_cast<long long>(current[i].cols())));
    }
  }
  if (bundle.scalars.size() != 3) {
    return Status::InvalidArgument("checkpoint scalar block malformed");
  }
  RestoreParams(bundle.tensors);
  label_mean_ = bundle.scalars[0];
  label_std_ = bundle.scalars[1];
  best_val_metric_ = bundle.scalars[2];
  return Status::OK();
}

int64_t GnnNodePredictor::NumParameters() const {
  int64_t n = model_->NumParameters();
  n += cls_head_ ? cls_head_->NumParameters()
                 : scalar_head_->NumParameters();
  return n;
}

}  // namespace relgraph

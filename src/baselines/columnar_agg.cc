#include "baselines/columnar_agg.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "core/parallel.h"
#include "core/string_util.h"
#include "relational/query.h"

namespace relgraph {

namespace {

/// Numeric non-key columns are aggregatable (same rule the classic
/// FeatureAggregator used): PKs, FKs and the event-time column carry
/// identity/topology, not signal.
bool IsAggregatableNumeric(const TableSchema& schema, const Column& col) {
  if (schema.primary_key() && *schema.primary_key() == col.name()) {
    return false;
  }
  if (schema.IsForeignKey(col.name())) return false;
  if (schema.time_column() && *schema.time_column() == col.name()) {
    return false;
  }
  return col.IsNumericType() && col.type() != DataType::kTimestamp;
}

/// Linear-interpolation quantile of an ascending-sorted non-empty vector.
double SortedQuantile(const std::vector<double>& sorted, double p) {
  const size_t m = sorted.size();
  if (m == 1) return sorted[0];
  const double rank = p * static_cast<double>(m - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= m) return sorted[m - 1];
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

/// Streaming accumulator over one (value column, window) slice. All
/// updates run in ascending slot order — the fixed accumulation order the
/// determinism contract requires.
struct ValueAcc {
  int64_t n = 0;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  double mn = 0.0, mx = 0.0;
  double first = 0.0, last = 0.0;

  void Add(double v) {
    if (n == 0) {
      mn = mx = first = v;
    } else {
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
    last = v;
    ++n;
    sum += v;
    sum2 += v * v;
    sum3 += v * v * v;
  }
};

double EvalAgg(ColumnarAgg agg, const ValueAcc& acc,
               const std::vector<double>& sorted) {
  if (acc.n == 0) return 0.0;
  const double n = static_cast<double>(acc.n);
  const double mean = acc.sum / n;
  switch (agg) {
    case ColumnarAgg::kCount:
      return n;
    case ColumnarAgg::kCountDistinct: {
      // `sorted` is the gathered slice, already ascending.
      int64_t distinct = 0;
      for (size_t i = 0; i < sorted.size(); ++i) {
        if (i == 0 || sorted[i] != sorted[i - 1]) ++distinct;
      }
      return static_cast<double>(distinct);
    }
    case ColumnarAgg::kSum:
      return acc.sum;
    case ColumnarAgg::kAvg:
      return mean;
    case ColumnarAgg::kMin:
      return acc.mn;
    case ColumnarAgg::kMax:
      return acc.mx;
    case ColumnarAgg::kMedian:
      return SortedQuantile(sorted, 0.5);
    case ColumnarAgg::kQ25:
      return SortedQuantile(sorted, 0.25);
    case ColumnarAgg::kQ75:
      return SortedQuantile(sorted, 0.75);
    case ColumnarAgg::kStddev: {
      const double var = std::max(0.0, acc.sum2 / n - mean * mean);
      return std::sqrt(var);
    }
    case ColumnarAgg::kSkew: {
      const double var = std::max(0.0, acc.sum2 / n - mean * mean);
      if (var < 1e-12) return 0.0;
      const double m3 =
          acc.sum3 / n - 3.0 * mean * (acc.sum2 / n) + 2.0 * mean * mean * mean;
      return m3 / (var * std::sqrt(var));
    }
    case ColumnarAgg::kFirst:
      return acc.first;
    case ColumnarAgg::kLast:
      return acc.last;
    case ColumnarAgg::kRecency:
      break;  // rejected at Build
  }
  RELGRAPH_CHECK(false) << "unreachable aggregate kind";
  return 0.0;
}

}  // namespace

const char* ColumnarAggName(ColumnarAgg agg) {
  switch (agg) {
    case ColumnarAgg::kCount: return "count";
    case ColumnarAgg::kCountDistinct: return "count_distinct";
    case ColumnarAgg::kSum: return "sum";
    case ColumnarAgg::kAvg: return "mean";
    case ColumnarAgg::kMin: return "min";
    case ColumnarAgg::kMax: return "max";
    case ColumnarAgg::kMedian: return "median";
    case ColumnarAgg::kQ25: return "q25";
    case ColumnarAgg::kQ75: return "q75";
    case ColumnarAgg::kStddev: return "stddev";
    case ColumnarAgg::kSkew: return "skew";
    case ColumnarAgg::kFirst: return "first";
    case ColumnarAgg::kLast: return "last";
    case ColumnarAgg::kRecency: return "recency";
  }
  return "?";
}

std::vector<ColumnarAgg> FullAggVocabulary() {
  return {ColumnarAgg::kSum,    ColumnarAgg::kAvg,   ColumnarAgg::kMin,
          ColumnarAgg::kMax,    ColumnarAgg::kMedian, ColumnarAgg::kQ25,
          ColumnarAgg::kQ75,    ColumnarAgg::kStddev, ColumnarAgg::kSkew,
          ColumnarAgg::kFirst,  ColumnarAgg::kLast};
}

Result<ColumnarAggregator> ColumnarAggregator::Build(
    const Database& db, const std::string& entity_table,
    ColumnarAggOptions options) {
  ColumnarAggregator out;
  out.options_ = options;
  const Table* entity = db.FindTable(entity_table);
  if (entity == nullptr) {
    return Status::NotFound("entity table '" + entity_table + "' not found");
  }
  if (!entity->schema().primary_key()) {
    return Status::InvalidArgument("entity table '" + entity_table +
                                   "' needs a primary key");
  }
  if (options.max_hops < 0 || options.max_hops > 2) {
    return Status::InvalidArgument("max_hops must be 0, 1 or 2");
  }
  for (ColumnarAgg agg : options.value_aggs) {
    if (agg == ColumnarAgg::kRecency) {
      return Status::InvalidArgument(
          "kRecency is relation-level; use recency_features");
    }
    if (agg == ColumnarAgg::kMedian || agg == ColumnarAgg::kQ25 ||
        agg == ColumnarAgg::kQ75) {
      out.need_sorted_ = true;
    }
    if (agg == ColumnarAgg::kCountDistinct) {
      out.need_sorted_ = true;  // distinct counting scans the sorted slice
      out.need_distinct_ = true;
    }
  }
  out.num_entity_rows_ = entity->num_rows();
  if (options.max_hops < 1) return out;

  for (const auto& table : db.tables()) {
    for (const auto& fk : table->schema().foreign_keys()) {
      if (fk.referenced_table != entity_table) continue;
      if (table->name() == entity_table) continue;  // self-FK: skip
      Relation rel;
      rel.table = table->name();
      RELGRAPH_ASSIGN_OR_RETURN(FkIndex idx,
                                FkIndex::Build(*table, fk.column));

      // Freeze the grouped slot layout: per entity row, the child rows in
      // FkIndex order (static first, then ascending event time).
      const int64_t num_entities = entity->num_rows();
      rel.offsets.reserve(static_cast<size_t>(num_entities) + 1);
      rel.offsets.push_back(0);
      std::vector<int64_t> slot_rows;  // child row per slot
      for (int64_t e = 0; e < num_entities; ++e) {
        const auto& rows = idx.Rows(entity->PrimaryKey(e));
        slot_rows.insert(slot_rows.end(), rows.begin(), rows.end());
        rel.offsets.push_back(static_cast<int64_t>(slot_rows.size()));
      }
      const int64_t num_slots = static_cast<int64_t>(slot_rows.size());
      rel.times.resize(static_cast<size_t>(num_slots), kNoTimestamp);
      for (int64_t s = 0; s < num_slots; ++s) {
        rel.times[static_cast<size_t>(s)] =
            table->RowTime(slot_rows[static_cast<size_t>(s)]);
      }
      rel.static_end.resize(static_cast<size_t>(num_entities));
      for (int64_t e = 0; e < num_entities; ++e) {
        int64_t s = rel.offsets[static_cast<size_t>(e)];
        const int64_t gend = rel.offsets[static_cast<size_t>(e) + 1];
        while (s < gend && rel.times[static_cast<size_t>(s)] == kNoTimestamp) {
          ++s;
        }
        rel.static_end[static_cast<size_t>(e)] = s;
      }

      // Hop-1 numeric value columns, materialized slot-aligned.
      for (int64_t c = 0; c < table->num_columns(); ++c) {
        const Column& col = table->column(c);
        if (!IsAggregatableNumeric(table->schema(), col)) continue;
        ValueColumn vc;
        vc.label = table->name() + "." + col.name();
        vc.vals.resize(static_cast<size_t>(num_slots), 0.0);
        vc.valid.resize(static_cast<size_t>(num_slots), 0);
        for (int64_t s = 0; s < num_slots; ++s) {
          const int64_t r = slot_rows[static_cast<size_t>(s)];
          if (col.IsNull(r)) continue;
          vc.vals[static_cast<size_t>(s)] = col.Numeric(r);
          vc.valid[static_cast<size_t>(s)] = 1;
        }
        rel.values.push_back(std::move(vc));
      }

      // Non-entity FK key columns for count_distinct.
      if (options.count_distinct) {
        for (const auto& other_fk : table->schema().foreign_keys()) {
          if (other_fk.referenced_table == entity_table) continue;
          const Column& col = table->column(other_fk.column);
          DistinctColumn dc;
          dc.label = table->name() + "." + other_fk.column;
          dc.vals.resize(static_cast<size_t>(num_slots), 0);
          dc.valid.resize(static_cast<size_t>(num_slots), 0);
          for (int64_t s = 0; s < num_slots; ++s) {
            const int64_t r = slot_rows[static_cast<size_t>(s)];
            if (col.IsNull(r)) continue;
            dc.vals[static_cast<size_t>(s)] = col.Int(r);
            dc.valid[static_cast<size_t>(s)] = 1;
          }
          rel.distincts.push_back(std::move(dc));
        }
      }

      // Hop-2 attribute columns: parent values resolved once, at build
      // time, instead of a hash probe per (query row, child row).
      if (options.max_hops >= 2) {
        for (const auto& child_fk : table->schema().foreign_keys()) {
          if (child_fk.referenced_table == entity_table) continue;
          const Table* parent = db.FindTable(child_fk.referenced_table);
          if (parent == nullptr) continue;
          const Column& fk_col = table->column(child_fk.column);
          for (int64_t c = 0; c < parent->num_columns(); ++c) {
            const Column& pcol = parent->column(c);
            if (!IsAggregatableNumeric(parent->schema(), pcol)) continue;
            ValueColumn vc;
            vc.label = StrFormat("%s.%s->%s.%s", table->name().c_str(),
                                 child_fk.column.c_str(),
                                 parent->name().c_str(), pcol.name().c_str());
            vc.vals.resize(static_cast<size_t>(num_slots), 0.0);
            vc.valid.resize(static_cast<size_t>(num_slots), 0);
            for (int64_t s = 0; s < num_slots; ++s) {
              const int64_t r = slot_rows[static_cast<size_t>(s)];
              if (fk_col.IsNull(r)) continue;
              auto prow = parent->FindByPrimaryKey(fk_col.Int(r));
              if (!prow.ok() || pcol.IsNull(prow.value())) continue;
              vc.vals[static_cast<size_t>(s)] = pcol.Numeric(prow.value());
              vc.valid[static_cast<size_t>(s)] = 1;
            }
            rel.values.push_back(std::move(vc));
          }
        }
      }

      // Output layout and feature names. Per window: count, then
      // count_distinct keys, then per value column every requested
      // aggregate followed by its paired missing indicator.
      rel.base_col = static_cast<int64_t>(out.feature_names_.size());
      rel.per_window =
          1 + static_cast<int64_t>(rel.distincts.size()) +
          static_cast<int64_t>(rel.values.size()) *
              (static_cast<int64_t>(options.value_aggs.size()) +
               (options.missing_indicators ? 1 : 0));
      for (Duration w : options.windows) {
        const std::string suffix = "@" + FormatDuration(w);
        out.feature_names_.push_back("h1.count(" + rel.table + ")" + suffix);
        for (const auto& dc : rel.distincts) {
          out.feature_names_.push_back("h1.count_distinct(" + dc.label + ")" +
                                       suffix);
        }
        for (const auto& vc : rel.values) {
          const bool two_hop = vc.label.find("->") != std::string::npos;
          const char* hop = two_hop ? "h2" : "h1";
          for (ColumnarAgg agg : options.value_aggs) {
            out.feature_names_.push_back(StrFormat(
                "%s.%s(%s)%s", hop, ColumnarAggName(agg), vc.label.c_str(),
                suffix.c_str()));
          }
          if (options.missing_indicators) {
            out.feature_names_.push_back(StrFormat(
                "%s.present(%s)%s", hop, vc.label.c_str(), suffix.c_str()));
          }
        }
      }
      if (options.recency_features) {
        rel.recency_col = static_cast<int64_t>(out.feature_names_.size());
        out.feature_names_.push_back("h1.recency(" + rel.table + ")");
      }
      out.relations_.push_back(std::move(rel));
    }
  }
  return out;
}

void ColumnarAggregator::ComputeRow(int64_t out_row, int64_t entity_row,
                                    Timestamp cutoff, Tensor* out,
                                    int64_t col_offset,
                                    Scratch* scratch) const {
  RELGRAPH_CHECK(entity_row >= 0 && entity_row < num_entity_rows_);
  for (const Relation& rel : relations_) {
    const int64_t goff = rel.offsets[static_cast<size_t>(entity_row)];
    const int64_t gend = rel.offsets[static_cast<size_t>(entity_row) + 1];
    const int64_t s_end = rel.static_end[static_cast<size_t>(entity_row)];
    // Timed rows strictly before the cutoff: [s_end, hi).
    const auto t_begin = rel.times.begin();
    const int64_t hi = std::lower_bound(t_begin + s_end, t_begin + gend,
                                        cutoff) -
                       t_begin;
    for (size_t wi = 0; wi < options_.windows.size(); ++wi) {
      const Timestamp start = cutoff - options_.windows[wi];
      const int64_t lo = std::lower_bound(t_begin + s_end, t_begin + hi,
                                          start) -
                         t_begin;
      int64_t col = col_offset + rel.base_col +
                    static_cast<int64_t>(wi) * rel.per_window;
      // Row count: static rows belong to every window.
      const int64_t count = (s_end - goff) + (hi - lo);
      out->at(out_row, col++) = static_cast<float>(count);
      // Distinct key counts.
      for (const DistinctColumn& dc : rel.distincts) {
        scratch->keys.clear();
        for (int64_t s = goff; s < s_end; ++s) {
          if (dc.valid[static_cast<size_t>(s)]) {
            scratch->keys.push_back(dc.vals[static_cast<size_t>(s)]);
          }
        }
        for (int64_t s = lo; s < hi; ++s) {
          if (dc.valid[static_cast<size_t>(s)]) {
            scratch->keys.push_back(dc.vals[static_cast<size_t>(s)]);
          }
        }
        std::sort(scratch->keys.begin(), scratch->keys.end());
        const int64_t distinct =
            std::unique(scratch->keys.begin(), scratch->keys.end()) -
            scratch->keys.begin();
        out->at(out_row, col++) = static_cast<float>(distinct);
      }
      // Value columns: one ascending pass per column (plus a sorted
      // gather when a quantile/distinct aggregate asks for it).
      for (const ValueColumn& vc : rel.values) {
        ValueAcc acc;
        for (int64_t s = goff; s < s_end; ++s) {
          if (vc.valid[static_cast<size_t>(s)]) {
            acc.Add(vc.vals[static_cast<size_t>(s)]);
          }
        }
        for (int64_t s = lo; s < hi; ++s) {
          if (vc.valid[static_cast<size_t>(s)]) {
            acc.Add(vc.vals[static_cast<size_t>(s)]);
          }
        }
        if (need_sorted_ && acc.n > 0) {
          scratch->sorted.clear();
          for (int64_t s = goff; s < s_end; ++s) {
            if (vc.valid[static_cast<size_t>(s)]) {
              scratch->sorted.push_back(vc.vals[static_cast<size_t>(s)]);
            }
          }
          for (int64_t s = lo; s < hi; ++s) {
            if (vc.valid[static_cast<size_t>(s)]) {
              scratch->sorted.push_back(vc.vals[static_cast<size_t>(s)]);
            }
          }
          std::sort(scratch->sorted.begin(), scratch->sorted.end());
        }
        for (ColumnarAgg agg : options_.value_aggs) {
          out->at(out_row, col++) =
              static_cast<float>(EvalAgg(agg, acc, scratch->sorted));
        }
        if (options_.missing_indicators) {
          out->at(out_row, col++) = acc.n > 0 ? 1.0f : 0.0f;
        }
      }
    }
    if (rel.recency_col >= 0) {
      // Last timed event strictly before the cutoff — independent of the
      // window set (an empty `windows` still reports true recency).
      const double days_since =
          hi > s_end
              ? static_cast<double>(cutoff -
                                    rel.times[static_cast<size_t>(hi - 1)]) /
                    static_cast<double>(kDay)
              : 365.0;
      out->at(out_row, col_offset + rel.recency_col) =
          static_cast<float>(std::log1p(days_since));
    }
  }
}

void ColumnarAggregator::ComputeInto(const std::vector<int64_t>& entity_rows,
                                     const std::vector<Timestamp>& cutoffs,
                                     Tensor* out, int64_t col_offset,
                                     bool parallel) const {
  RELGRAPH_CHECK(entity_rows.size() == cutoffs.size());
  const int64_t n = static_cast<int64_t>(entity_rows.size());
  RELGRAPH_CHECK(out->rows() == n);
  RELGRAPH_CHECK(out->cols() >= col_offset + dim());
  auto run_range = [&](int64_t lo, int64_t hi) {
    Scratch scratch;
    for (int64_t i = lo; i < hi; ++i) {
      ComputeRow(i, entity_rows[static_cast<size_t>(i)],
                 cutoffs[static_cast<size_t>(i)], out, col_offset, &scratch);
    }
  };
  if (parallel) {
    ParallelFor(0, n, options_.parallel_grain, run_range);
  } else {
    run_range(0, n);
  }
}

Tensor ColumnarAggregator::Compute(const std::vector<int64_t>& entity_rows,
                                   const std::vector<Timestamp>& cutoffs)
    const {
  Tensor out(static_cast<int64_t>(entity_rows.size()), dim());
  ComputeInto(entity_rows, cutoffs, &out, 0, /*parallel=*/true);
  return out;
}

Tensor ColumnarAggregator::ComputeSerial(
    const std::vector<int64_t>& entity_rows,
    const std::vector<Timestamp>& cutoffs) const {
  Tensor out(static_cast<int64_t>(entity_rows.size()), dim());
  ComputeInto(entity_rows, cutoffs, &out, 0, /*parallel=*/false);
  return out;
}

Result<EncodedTable> BuildHybridAggBlock(const Database& db,
                                         const std::string& entity_table,
                                         Timestamp cutoff,
                                         const ColumnarAggOptions& options) {
  RELGRAPH_ASSIGN_OR_RETURN(
      ColumnarAggregator agg,
      ColumnarAggregator::Build(db, entity_table, options));
  const Table* entity = db.FindTable(entity_table);
  RELGRAPH_CHECK(entity != nullptr);  // Build above already validated
  const int64_t n = entity->num_rows();
  std::vector<int64_t> rows(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) rows[static_cast<size_t>(r)] = r;
  std::vector<Timestamp> cutoffs(static_cast<size_t>(n), cutoff);
  EncodedTable block;
  block.features = agg.Compute(rows, cutoffs);
  for (const auto& name : agg.feature_names()) {
    block.feature_names.push_back("agg." + name);
  }
  // Z-score per column so the block lands on the same scale as the
  // encoder's numeric features; constant columns encode as 0.
  Tensor& f = block.features;
  for (int64_t c = 0; c < f.cols(); ++c) {
    double sum = 0.0, sum2 = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      sum += f.at(r, c);
      sum2 += static_cast<double>(f.at(r, c)) * f.at(r, c);
    }
    const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    const double var =
        n > 0 ? std::max(0.0, sum2 / static_cast<double>(n) - mean * mean)
              : 0.0;
    const double inv_std = var > 1e-10 ? 1.0 / std::sqrt(var) : 0.0;
    for (int64_t r = 0; r < n; ++r) {
      f.at(r, c) = static_cast<float>((f.at(r, c) - mean) * inv_std);
    }
  }
  return block;
}

}  // namespace relgraph

# Empty compiler generated dependencies file for clinical_readmission.
# This may be replaced when dependencies are built.

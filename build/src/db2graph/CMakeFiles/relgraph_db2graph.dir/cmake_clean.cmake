file(REMOVE_RECURSE
  "CMakeFiles/relgraph_db2graph.dir/feature_encoder.cc.o"
  "CMakeFiles/relgraph_db2graph.dir/feature_encoder.cc.o.d"
  "CMakeFiles/relgraph_db2graph.dir/graph_builder.cc.o"
  "CMakeFiles/relgraph_db2graph.dir/graph_builder.cc.o.d"
  "librelgraph_db2graph.a"
  "librelgraph_db2graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relgraph_db2graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

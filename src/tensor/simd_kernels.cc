#include "tensor/simd_kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#if defined(RELGRAPH_SIMD_AVX2) && defined(__AVX2__)
#define RELGRAPH_KERN_AVX2 1
#include <immintrin.h>
#endif

namespace relgraph {
namespace kern {

namespace {

// ------------------------------------------------------------------
// Shared numeric pieces. Everything in this block is compiled the same
// way in both builds (the SIMD TU carries -ffp-contract=off, and plain
// -mavx2 does not license FMA contraction), so these are the single
// source of truth for the bit contracts.

// Cephes-style expf constants; the AVX2 lanes apply the identical
// operation sequence.
constexpr float kExpMaxX = 88.3762626647950f;
constexpr float kExpMinX = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

inline float Pow2i(int32_t n) {
  return std::bit_cast<float>((n + 127) << 23);
}

}  // namespace

float ExpRef(float x) {
  // Clamp with min/max-instruction semantics ((x < hi) ? x : hi), which
  // the vector _mm256_min_ps/_mm256_max_ps pair reproduces exactly,
  // including for NaN input (NaN compares false, so it clamps to hi).
  float xx = (x < kExpMaxX) ? x : kExpMaxX;
  xx = (xx > kExpMinX) ? xx : kExpMinX;
  // n = round-to-nearest(x / ln2) via floor(x*log2e + 0.5), then
  // Cody-Waite two-stage reduction r = x - n*ln2 in [-ln2/2, ln2/2].
  const float fx = std::floor(xx * kLog2e + 0.5f);
  xx = xx - fx * kLn2Hi;
  xx = xx - fx * kLn2Lo;
  // Degree-5 polynomial for e^r - r - 1 over the reduced range.
  float z = kExpC0;
  z = z * xx + kExpC1;
  z = z * xx + kExpC2;
  z = z * xx + kExpC3;
  z = z * xx + kExpC4;
  z = z * xx + kExpC5;
  z = z * xx;
  z = z * xx;
  z = z + xx;
  z = z + 1.0f;
  return z * Pow2i(static_cast<int32_t>(fx));
}

float RowMax(const float* x, int64_t n) {
  // Max has no rounding, so a plain fold is order-independent for finite
  // inputs; sharing one scalar loop across both builds makes ties and
  // NaN propagation trivially identical too.
  float m = x[0];
  for (int64_t i = 1; i < n; ++i) m = (x[i] > m) ? x[i] : m;
  return m;
}

int64_t PackedSize(int64_t k, int64_t n) {
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  return panels * kPanelWidth * k;
}

void PackB(const float* B, int64_t k, int64_t n, float* packed) {
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (int64_t jp = 0; jp < panels; ++jp) {
    const int64_t j0 = jp * kPanelWidth;
    const int64_t w = std::min(kPanelWidth, n - j0);
    float* panel = packed + jp * kPanelWidth * k;
    for (int64_t p = 0; p < k; ++p) {
      float* dst = panel + p * kPanelWidth;
      std::memcpy(dst, B + p * n + j0, static_cast<size_t>(w) * sizeof(float));
      for (int64_t c = w; c < kPanelWidth; ++c) dst[c] = 0.0f;
    }
  }
}

// ------------------------------------------------------------------
// Shared low-precision pieces. Quantization and bf16 conversion are
// plain scalar code compiled identically in both builds, so the two
// builds cannot disagree about a single stored byte.

void QuantizeRowRef(const float* x, int64_t n, int8_t* q, float* scale) {
  float max_abs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {
    *scale = 0.0f;
    std::memset(q, 0, static_cast<size_t>(n));
    return;
  }
  const float inv = 127.0f / max_abs;
  for (int64_t i = 0; i < n; ++i) {
    long v = std::lrintf(x[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    q[i] = static_cast<int8_t>(v);
  }
  *scale = max_abs / 127.0f;
}

uint16_t Bf16FromF32(float x) {
  const uint32_t u = std::bit_cast<uint32_t>(x);
  if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x007FFFFFu) != 0u) {
    // Quiet the NaN so truncation can't produce an infinity bit pattern.
    return static_cast<uint16_t>((u >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the truncated 16 mantissa bits.
  return static_cast<uint16_t>((u + 0x7FFFu + ((u >> 16) & 1u)) >> 16);
}

float F32FromBf16(uint16_t h) {
  return std::bit_cast<float>(static_cast<uint32_t>(h) << 16);
}

namespace {

inline int64_t PadEven(int64_t k) { return (k + 1) & ~int64_t{1}; }

}  // namespace

int64_t PackedSizeInt8(int64_t k, int64_t n) {
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  return panels * kPanelWidth * PadEven(k);
}

void PackBInt8(const int8_t* B, int64_t k, int64_t n, int16_t* packed) {
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  const int64_t k_pad = PadEven(k);
  for (int64_t jp = 0; jp < panels; ++jp) {
    const int64_t j0 = jp * kPanelWidth;
    const int64_t w = std::min(kPanelWidth, n - j0);
    int16_t* panel = packed + jp * kPanelWidth * k_pad;
    for (int64_t kp = 0; kp < k_pad / 2; ++kp) {
      int16_t* dst = panel + kp * 2 * kPanelWidth;
      for (int64_t j = 0; j < kPanelWidth; ++j) {
        for (int64_t e = 0; e < 2; ++e) {
          const int64_t p = 2 * kp + e;
          dst[2 * j + e] = (j < w && p < k)
                               ? static_cast<int16_t>(B[p * n + j0 + j])
                               : int16_t{0};
        }
      }
    }
  }
}

#if defined(RELGRAPH_KERN_AVX2)

// ===================================================== AVX2 build

bool SimdEnabled() { return true; }
const char* SimdName() { return "avx2"; }

namespace {

// Fixed-tree horizontal sum; the lane-combine order is the LaneDot
// contract: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_add_ps(lo, hi);
  const __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(_mm_add_ss(t, _mm_shuffle_ps(t, t, 0x1)));
}

inline __m256 Exp8(__m256 x) {
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpMaxX));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpMinX));
  const __m256 fx = _mm256_floor_ps(_mm256_add_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kLog2e)), _mm256_set1_ps(0.5f)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kLn2Hi)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kLn2Lo)));
  __m256 z = _mm256_set1_ps(kExpC0);
  z = _mm256_add_ps(_mm256_mul_ps(z, x), _mm256_set1_ps(kExpC1));
  z = _mm256_add_ps(_mm256_mul_ps(z, x), _mm256_set1_ps(kExpC2));
  z = _mm256_add_ps(_mm256_mul_ps(z, x), _mm256_set1_ps(kExpC3));
  z = _mm256_add_ps(_mm256_mul_ps(z, x), _mm256_set1_ps(kExpC4));
  z = _mm256_add_ps(_mm256_mul_ps(z, x), _mm256_set1_ps(kExpC5));
  z = _mm256_mul_ps(z, x);
  z = _mm256_mul_ps(z, x);
  z = _mm256_add_ps(z, x);
  z = _mm256_add_ps(z, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256 pow2 = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  return _mm256_mul_ps(z, pow2);
}

// One register tile of R output rows against a 16-column stripe of B
// starting at column j, sweeping the full inner dimension. `load_b`
// abstracts the B layout (row-major stride n vs packed panel stride 16).
template <int R, typename LoadB>
inline void GemmTile16(const float* A, float* O, int64_t i, int64_t j,
                       int64_t k, int64_t n, LoadB load_b) {
  const float* a[R];
  for (int r = 0; r < R; ++r) a[r] = A + (i + r) * k;
  __m256 acc0[R], acc1[R];
  for (int r = 0; r < R; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = load_b(p);
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 va = _mm256_set1_ps(a[r][p]);
      acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(va, b0));
      acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(va, b1));
    }
  }
  for (int r = 0; r < R; ++r) {
    float* orow = O + (i + r) * n + j;
    _mm256_storeu_ps(orow, acc0[r]);
    _mm256_storeu_ps(orow + 8, acc1[r]);
  }
}

// Tail columns [j, n) (fewer than 16) for R rows, scalar accumulators.
template <int R>
inline void GemmTailCols(const float* A, const float* B, float* O, int64_t i,
                         int64_t j0, int64_t k, int64_t n) {
  for (int64_t j = j0; j < n; ++j) {
    float acc[R] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float bv = B[p * n + j];
      for (int r = 0; r < R; ++r) acc[r] += A[(i + r) * k + p] * bv;
    }
    for (int r = 0; r < R; ++r) O[(i + r) * n + j] = acc[r];
  }
}

template <int R>
inline void GemmRows(const float* A, const float* B, float* O, int64_t i,
                     int64_t k, int64_t n) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const float* bbase = B + j;
    GemmTile16<R>(A, O, i, j, k, n,
                  [bbase, n](int64_t p) { return bbase + p * n; });
  }
  if (j < n) GemmTailCols<R>(A, B, O, i, j, k, n);
}

template <int R>
inline void GemmPackedRows(const float* A, const float* packed, float* O,
                           int64_t i, int64_t k, int64_t n) {
  const int64_t full_panels = n / kPanelWidth;
  for (int64_t jp = 0; jp < full_panels; ++jp) {
    const float* panel = packed + jp * kPanelWidth * k;
    GemmTile16<R>(A, O, i, jp * kPanelWidth, k, n,
                  [panel](int64_t p) { return panel + p * kPanelWidth; });
  }
  const int64_t j0 = full_panels * kPanelWidth;
  if (j0 < n) {
    // The last panel is zero-padded, so the 16-wide tile computes valid
    // values for the live columns; spill through a stack buffer instead
    // of storing past the row end.
    const float* panel = packed + full_panels * kPanelWidth * k;
    const int64_t w = n - j0;
    const float* a[R];
    for (int r = 0; r < R; ++r) a[r] = A + (i + r) * k;
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
    for (int64_t p = 0; p < k; ++p) {
      const float* bp = panel + p * kPanelWidth;
      const __m256 b0 = _mm256_loadu_ps(bp);
      const __m256 b1 = _mm256_loadu_ps(bp + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 va = _mm256_set1_ps(a[r][p]);
        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(va, b0));
        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(va, b1));
      }
    }
    for (int r = 0; r < R; ++r) {
      alignas(32) float tmp[kPanelWidth];
      _mm256_storeu_ps(tmp, acc0[r]);
      _mm256_storeu_ps(tmp + 8, acc1[r]);
      std::memcpy(O + (i + r) * n + j0, tmp,
                  static_cast<size_t>(w) * sizeof(float));
    }
  }
}

}  // namespace

void AddInto(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void SubOut(float* o, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void MulOut(float* o, const float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleInPlace(float* dst, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), vs));
  }
  for (; i < n; ++i) dst[i] *= s;
}

void AxpyInto(float* dst, const float* src, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_mul_ps(vs, _mm256_loadu_ps(src + i))));
  }
  for (; i < n; ++i) dst[i] += s * src[i];
}

void ReluOut(float* o, const float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(x, 0) returns the second operand for NaN and for ±0 ties,
    // exactly like std::max(0.0f, x).
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) o[i] = std::max(0.0f, x[i]);
}

void ReluGradAccum(float* dst, const float* g, const float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero,
                                      _CMP_GT_OQ);
    const __m256 add = _mm256_and_ps(mask, _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), add));
  }
  for (; i < n; ++i) dst[i] += (x[i] > 0.0f) ? g[i] : 0.0f;
}

void GemmRowChunk(const float* A, const float* B, float* O, int64_t i0,
                  int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) GemmRows<4>(A, B, O, i, k, n);
  switch (i1 - i) {
    case 3: GemmRows<3>(A, B, O, i, k, n); break;
    case 2: GemmRows<2>(A, B, O, i, k, n); break;
    case 1: GemmRows<1>(A, B, O, i, k, n); break;
    default: break;
  }
}

void GemmPackedRowChunk(const float* A, const float* packed_b, float* O,
                        int64_t i0, int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) GemmPackedRows<4>(A, packed_b, O, i, k, n);
  switch (i1 - i) {
    case 3: GemmPackedRows<3>(A, packed_b, O, i, k, n); break;
    case 2: GemmPackedRows<2>(A, packed_b, O, i, k, n); break;
    case 1: GemmPackedRows<1>(A, packed_b, O, i, k, n); break;
    default: break;
  }
}

float LaneDot(const float* a, const float* b, int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p)));
  }
  float r = HSum(acc);
  for (; p < k; ++p) r += a[p] * b[p];
  return r;
}

void GemmBTRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * n;
    int64_t j = 0;
    // Four B rows per sweep so each loaded a-vector feeds four dot
    // products; per-output bits still follow the LaneDot contract.
    for (; j + 4 <= n; j += 4) {
      const float* b0 = B + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 va = _mm256_loadu_ps(arow + p);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(va, _mm256_loadu_ps(b0 + p)));
        acc1 = _mm256_add_ps(acc1,
                             _mm256_mul_ps(va, _mm256_loadu_ps(b1 + p)));
        acc2 = _mm256_add_ps(acc2,
                             _mm256_mul_ps(va, _mm256_loadu_ps(b2 + p)));
        acc3 = _mm256_add_ps(acc3,
                             _mm256_mul_ps(va, _mm256_loadu_ps(b3 + p)));
      }
      float r0 = HSum(acc0), r1 = HSum(acc1);
      float r2 = HSum(acc2), r3 = HSum(acc3);
      for (; p < k; ++p) {
        const float av = arow[p];
        r0 += av * b0[p];
        r1 += av * b1[p];
        r2 += av * b2[p];
        r3 += av * b3[p];
      }
      orow[j] = r0;
      orow[j + 1] = r1;
      orow[j + 2] = r2;
      orow[j + 3] = r3;
    }
    for (; j < n; ++j) orow[j] = LaneDot(arow, B + j * k, k);
  }
}

void GemmATRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t m, int64_t k, int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = A + p * m;
    const float* brow = B + p * n;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const __m256 v0 = _mm256_set1_ps(arow[i]);
      const __m256 v1 = _mm256_set1_ps(arow[i + 1]);
      const __m256 v2 = _mm256_set1_ps(arow[i + 2]);
      const __m256 v3 = _mm256_set1_ps(arow[i + 3]);
      float* o0 = O + i * n;
      float* o1 = o0 + n;
      float* o2 = o1 + n;
      float* o3 = o2 + n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 vb = _mm256_loadu_ps(brow + j);
        _mm256_storeu_ps(o0 + j, _mm256_add_ps(_mm256_loadu_ps(o0 + j),
                                               _mm256_mul_ps(v0, vb)));
        _mm256_storeu_ps(o1 + j, _mm256_add_ps(_mm256_loadu_ps(o1 + j),
                                               _mm256_mul_ps(v1, vb)));
        _mm256_storeu_ps(o2 + j, _mm256_add_ps(_mm256_loadu_ps(o2 + j),
                                               _mm256_mul_ps(v2, vb)));
        _mm256_storeu_ps(o3 + j, _mm256_add_ps(_mm256_loadu_ps(o3 + j),
                                               _mm256_mul_ps(v3, vb)));
      }
      for (; j < n; ++j) {
        const float bv = brow[j];
        o0[j] += arow[i] * bv;
        o1[j] += arow[i + 1] * bv;
        o2[j] += arow[i + 2] * bv;
        o3[j] += arow[i + 3] * bv;
      }
    }
    for (; i < i1; ++i) {
      const float av = arow[i];
      const __m256 va = _mm256_set1_ps(av);
      float* orow = O + i * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(orow + j, _mm256_add_ps(_mm256_loadu_ps(orow + j),
                                                 _mm256_mul_ps(va,
                                                     _mm256_loadu_ps(brow + j))));
      }
      for (; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

namespace {

// R output rows of the int8 GEMM. Accumulation is exact int32 (madd of
// |q| <= 127 int16 pairs cannot overflow int16*int16 products, and the
// running sum stays below 2^31 for k <= kInt8MaxK), so lane order is
// numerically irrelevant; only the dequant multiply rounds, and it
// follows the contract (sa*sb rounded once, then times float(acc)).
template <int R>
inline void Int8Rows(const int16_t* A16, const float* a_scales,
                     const int16_t* packed, const float* b_scales, float* O,
                     int64_t i, int64_t k, int64_t n) {
  const int64_t k_pad = (k + 1) & ~int64_t{1};
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  const int64_t kp_count = k_pad / 2;
  const int16_t* a[R];
  for (int r = 0; r < R; ++r) a[r] = A16 + (i + r) * k_pad;
  for (int64_t jp = 0; jp < panels; ++jp) {
    const int64_t j0 = jp * kPanelWidth;
    const int64_t w = std::min(kPanelWidth, n - j0);
    const int16_t* panel = packed + jp * kPanelWidth * k_pad;
    __m256i acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm256_setzero_si256();
      acc1[r] = _mm256_setzero_si256();
    }
    for (int64_t kp = 0; kp < kp_count; ++kp) {
      const int16_t* brow = panel + kp * 2 * kPanelWidth;
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 16));
      for (int r = 0; r < R; ++r) {
        // The two adjacent int16 codes ARE the madd operand pair in
        // little-endian memory — broadcast them with one vpbroadcastd
        // load instead of assembling the pair in scalar registers.
        int32_t pair;
        std::memcpy(&pair, a[r] + 2 * kp, sizeof(pair));
        const __m256i va = _mm256_set1_epi32(pair);
        acc0[r] = _mm256_add_epi32(acc0[r], _mm256_madd_epi16(va, b0));
        acc1[r] = _mm256_add_epi32(acc1[r], _mm256_madd_epi16(va, b1));
      }
    }
    if (w == kPanelWidth) {
      const __m256 sb0 = _mm256_loadu_ps(b_scales + j0);
      const __m256 sb1 = _mm256_loadu_ps(b_scales + j0 + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 sa = _mm256_set1_ps(a_scales[i + r]);
        float* orow = O + (i + r) * n + j0;
        _mm256_storeu_ps(orow, _mm256_mul_ps(_mm256_mul_ps(sa, sb0),
                                             _mm256_cvtepi32_ps(acc0[r])));
        _mm256_storeu_ps(orow + 8,
                         _mm256_mul_ps(_mm256_mul_ps(sa, sb1),
                                       _mm256_cvtepi32_ps(acc1[r])));
      }
    } else {
      // Ragged last panel: spill the exact int32 sums and dequantize the
      // live columns with the identical scalar expression.
      alignas(32) int32_t tmp[kPanelWidth];
      for (int r = 0; r < R; ++r) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp), acc0[r]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp + 8), acc1[r]);
        const float sa = a_scales[i + r];
        float* orow = O + (i + r) * n + j0;
        for (int64_t c = 0; c < w; ++c) {
          orow[c] = (sa * b_scales[j0 + c]) * static_cast<float>(tmp[c]);
        }
      }
    }
  }
}

// Expands 8 bf16 values starting at p to fp32 lanes (exact bit shift).
inline __m256 LoadBf16x8(const uint16_t* p) {
  const __m128i h =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
}

template <int R>
inline void Bf16TailCols(const float* A, const uint16_t* B16, float* O,
                         int64_t i, int64_t j0, int64_t k, int64_t n) {
  for (int64_t j = j0; j < n; ++j) {
    float acc[R] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float bv = F32FromBf16(B16[p * n + j]);
      for (int r = 0; r < R; ++r) acc[r] += A[(i + r) * k + p] * bv;
    }
    for (int r = 0; r < R; ++r) O[(i + r) * n + j] = acc[r];
  }
}

template <int R>
inline void Bf16Rows(const float* A, const uint16_t* B16, float* O,
                     int64_t i, int64_t k, int64_t n) {
  const float* a[R];
  for (int r = 0; r < R; ++r) a[r] = A + (i + r) * k;
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const uint16_t* bbase = B16 + j;
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
    for (int64_t p = 0; p < k; ++p) {
      const uint16_t* bp = bbase + p * n;
      const __m256 b0 = LoadBf16x8(bp);
      const __m256 b1 = LoadBf16x8(bp + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 va = _mm256_set1_ps(a[r][p]);
        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(va, b0));
        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(va, b1));
      }
    }
    for (int r = 0; r < R; ++r) {
      float* orow = O + (i + r) * n + j;
      _mm256_storeu_ps(orow, acc0[r]);
      _mm256_storeu_ps(orow + 8, acc1[r]);
    }
  }
  if (j < n) Bf16TailCols<R>(A, B16, O, i, j, k, n);
}

}  // namespace

void Int8GemmPackedRowChunk(const int16_t* A16, const float* a_scales,
                            const int16_t* packed_b, const float* b_scales,
                            float* O, int64_t i0, int64_t i1, int64_t k,
                            int64_t n) {
  // Six-row main tile: 12 ymm accumulators + 2 B panels + 1 broadcast
  // stays within the 16-register budget while amortizing each streamed B
  // panel over 6 output rows (B traffic dominates at serving shapes).
  int64_t i = i0;
  for (; i + 6 <= i1; i += 6) {
    Int8Rows<6>(A16, a_scales, packed_b, b_scales, O, i, k, n);
  }
  switch (i1 - i) {
    case 5: Int8Rows<5>(A16, a_scales, packed_b, b_scales, O, i, k, n); break;
    case 4: Int8Rows<4>(A16, a_scales, packed_b, b_scales, O, i, k, n); break;
    case 3: Int8Rows<3>(A16, a_scales, packed_b, b_scales, O, i, k, n); break;
    case 2: Int8Rows<2>(A16, a_scales, packed_b, b_scales, O, i, k, n); break;
    case 1: Int8Rows<1>(A16, a_scales, packed_b, b_scales, O, i, k, n); break;
    default: break;
  }
}

void Bf16GemmRowChunk(const float* A, const uint16_t* B16, float* O,
                      int64_t i0, int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) Bf16Rows<4>(A, B16, O, i, k, n);
  switch (i1 - i) {
    case 3: Bf16Rows<3>(A, B16, O, i, k, n); break;
    case 2: Bf16Rows<2>(A, B16, O, i, k, n); break;
    case 1: Bf16Rows<1>(A, B16, O, i, k, n); break;
    default: break;
  }
}

void ExpShiftedRow(float* out, const float* x, float shift, int64_t n) {
  const __m256 vshift = _mm256_set1_ps(shift);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, Exp8(_mm256_sub_ps(_mm256_loadu_ps(x + i), vshift)));
  }
  for (; i < n; ++i) out[i] = ExpRef(x[i] - shift);
}

#else  // !RELGRAPH_KERN_AVX2

// ===================================================== portable build
//
// Plain C++ twins of every kernel above, bit-identical by construction:
// elementwise ops share the per-element formula, GEMM outputs share the
// ascending-p mul-then-add order (register tiling never reorders a fixed
// output element's updates), and LaneDot spells out the 8-lane structure
// and combine tree in scalar code.

bool SimdEnabled() { return false; }
const char* SimdName() { return "scalar"; }

namespace {

// Output-column tile: four accumulating output sub-rows plus the
// streamed b sub-row stay L1-resident (matches the PR-2 kernel).
constexpr int64_t kBlockJ = 1024;

}  // namespace

void AddInto(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SubOut(float* o, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}

void MulOut(float* o, const float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleInPlace(float* dst, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] *= s;
}

void AxpyInto(float* dst, const float* src, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += s * src[i];
}

void ReluOut(float* o, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::max(0.0f, x[i]);
}

void ReluGradAccum(float* dst, const float* g, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += (x[i] > 0.0f) ? g[i] : 0.0f;
}

void GemmRowChunk(const float* A, const float* B, float* O, int64_t i0,
                  int64_t i1, int64_t k, int64_t n) {
  // Register-block four output rows per sweep of the inner dimension:
  // each streamed row of b feeds four accumulating output rows. For any
  // fixed output element the updates arrive in p order 0..k-1.
  for (int64_t jb = 0; jb < n; jb += kBlockJ) {
    const int64_t je = std::min(n, jb + kBlockJ);
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = A + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* o0 = O + i * n;
      float* o1 = o0 + n;
      float* o2 = o1 + n;
      float* o3 = o2 + n;
      for (int64_t p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        const float* brow = B + p * n;
        for (int64_t j = jb; j < je; ++j) {
          const float bv = brow[j];
          o0[j] += v0 * bv;
          o1[j] += v1 * bv;
          o2[j] += v2 * bv;
          o3[j] += v3 * bv;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = A + i * k;
      float* orow = O + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = B + p * n;
        for (int64_t j = jb; j < je; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

void GemmPackedRowChunk(const float* A, const float* packed_b, float* O,
                        int64_t i0, int64_t i1, int64_t k, int64_t n) {
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (int64_t jp = 0; jp < panels; ++jp) {
    const int64_t j0 = jp * kPanelWidth;
    const int64_t w = std::min(kPanelWidth, n - j0);
    const float* panel = packed_b + jp * kPanelWidth * k;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = A + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* o0 = O + i * n + j0;
      float* o1 = o0 + n;
      float* o2 = o1 + n;
      float* o3 = o2 + n;
      for (int64_t p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        const float* prow = panel + p * kPanelWidth;
        for (int64_t c = 0; c < w; ++c) {
          const float bv = prow[c];
          o0[c] += v0 * bv;
          o1[c] += v1 * bv;
          o2[c] += v2 * bv;
          o3[c] += v3 * bv;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = A + i * k;
      float* orow = O + i * n + j0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* prow = panel + p * kPanelWidth;
        for (int64_t c = 0; c < w; ++c) orow[c] += av * prow[c];
      }
    }
  }
}

float LaneDot(const float* a, const float* b, int64_t k) {
  // The scalar spelling of the SIMD contract: eight float lanes over the
  // body, fixed-tree combine, ascending tail. Eight independent
  // accumulators also break the dependency chain that made the old
  // double-accumulator MatMulBT ~2x slower than MatMul.
  float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    for (int l = 0; l < 8; ++l) lane[l] += a[p + l] * b[p + l];
  }
  const float s0 = lane[0] + lane[4];
  const float s1 = lane[1] + lane[5];
  const float s2 = lane[2] + lane[6];
  const float s3 = lane[3] + lane[7];
  float r = (s0 + s2) + (s1 + s3);
  for (; p < k; ++p) r += a[p] * b[p];
  return r;
}

void GemmBTRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = A + i * k;
    float* orow = O + i * n;
    for (int64_t j = 0; j < n; ++j) orow[j] = LaneDot(arow, B + j * k, k);
  }
}

void GemmATRowChunk(const float* A, const float* B, float* O, int64_t i0,
                    int64_t i1, int64_t m, int64_t k, int64_t n) {
  // p stays outermost so each pass streams one row of a and b; the
  // per-element accumulation order (p ascending) matches the AVX2 build.
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = A + p * m;
    const float* brow = B + p * n;
    for (int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      float* orow = O + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void Int8GemmPackedRowChunk(const int16_t* A16, const float* a_scales,
                            const int16_t* packed_b, const float* b_scales,
                            float* O, int64_t i0, int64_t i1, int64_t k,
                            int64_t n) {
  // Integer accumulation is exact, so this plain loop matches the AVX2
  // madd path bit for bit regardless of order; the packed layout is read
  // identically (pairs of inner-dim rows, column-interleaved).
  const int64_t k_pad = (k + 1) & ~int64_t{1};
  const int64_t panels = (n + kPanelWidth - 1) / kPanelWidth;
  const int64_t kp_count = k_pad / 2;
  for (int64_t i = i0; i < i1; ++i) {
    const int16_t* arow = A16 + i * k_pad;
    const float sa = a_scales[i];
    float* orow = O + i * n;
    for (int64_t jp = 0; jp < panels; ++jp) {
      const int64_t j0 = jp * kPanelWidth;
      const int64_t w = std::min(kPanelWidth, n - j0);
      const int16_t* panel = packed_b + jp * kPanelWidth * k_pad;
      int32_t acc[kPanelWidth] = {};
      for (int64_t kp = 0; kp < kp_count; ++kp) {
        const int32_t a0 = arow[2 * kp];
        const int32_t a1 = arow[2 * kp + 1];
        const int16_t* brow = panel + kp * 2 * kPanelWidth;
        for (int64_t j = 0; j < kPanelWidth; ++j) {
          acc[j] += a0 * brow[2 * j] + a1 * brow[2 * j + 1];
        }
      }
      for (int64_t c = 0; c < w; ++c) {
        orow[j0 + c] = (sa * b_scales[j0 + c]) * static_cast<float>(acc[c]);
      }
    }
  }
}

void Bf16GemmRowChunk(const float* A, const uint16_t* B16, float* O,
                      int64_t i0, int64_t i1, int64_t k, int64_t n) {
  // Same shape as GemmRowChunk: four accumulating output rows per sweep,
  // expanding each bf16 element exactly before the contractual
  // round(a*b)-then-add in ascending p. O rows must be pre-zeroed.
  for (int64_t jb = 0; jb < n; jb += kBlockJ) {
    const int64_t je = std::min(n, jb + kBlockJ);
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = A + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* o0 = O + i * n;
      float* o1 = o0 + n;
      float* o2 = o1 + n;
      float* o3 = o2 + n;
      for (int64_t p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        const uint16_t* brow = B16 + p * n;
        for (int64_t j = jb; j < je; ++j) {
          const float bv = F32FromBf16(brow[j]);
          o0[j] += v0 * bv;
          o1[j] += v1 * bv;
          o2[j] += v2 * bv;
          o3[j] += v3 * bv;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = A + i * k;
      float* orow = O + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const uint16_t* brow = B16 + p * n;
        for (int64_t j = jb; j < je; ++j) {
          orow[j] += av * F32FromBf16(brow[j]);
        }
      }
    }
  }
}

void ExpShiftedRow(float* out, const float* x, float shift, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = ExpRef(x[i] - shift);
}

#endif  // RELGRAPH_KERN_AVX2

}  // namespace kern
}  // namespace relgraph

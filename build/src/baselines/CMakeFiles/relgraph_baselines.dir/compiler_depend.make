# Empty compiler generated dependencies file for relgraph_baselines.
# This may be replaced when dependencies are built.

#include <gtest/gtest.h>

#include "datagen/clinical.h"
#include "datagen/ecommerce.h"
#include "datagen/social.h"
#include "relational/query.h"

namespace relgraph {
namespace {

ECommerceConfig SmallShop() {
  ECommerceConfig cfg;
  cfg.num_users = 120;
  cfg.num_products = 40;
  cfg.num_categories = 6;
  cfg.horizon_days = 90;
  cfg.seed = 5;
  return cfg;
}

TEST(ECommerceGenTest, SchemaAndIntegrity) {
  Database db = MakeECommerceDb(SmallShop());
  EXPECT_EQ(db.num_tables(), 5);
  ASSERT_NE(db.FindTable("users"), nullptr);
  ASSERT_NE(db.FindTable("products"), nullptr);
  ASSERT_NE(db.FindTable("orders"), nullptr);
  ASSERT_NE(db.FindTable("reviews"), nullptr);
  ASSERT_NE(db.FindTable("categories"), nullptr);
  EXPECT_TRUE(db.Validate().ok()) << db.Validate().ToString();
}

TEST(ECommerceGenTest, RowCountsMatchConfig) {
  Database db = MakeECommerceDb(SmallShop());
  EXPECT_EQ(db.table("users").num_rows(), 120);
  EXPECT_EQ(db.table("products").num_rows(), 40);
  EXPECT_EQ(db.table("categories").num_rows(), 6);
  // Orders: roughly horizon/mean_interval per user; just sanity bounds.
  EXPECT_GT(db.table("orders").num_rows(), 120);
  EXPECT_GT(db.table("reviews").num_rows(), 20);
}

TEST(ECommerceGenTest, DeterministicForSeed) {
  Database a = MakeECommerceDb(SmallShop());
  Database b = MakeECommerceDb(SmallShop());
  ASSERT_EQ(a.table("orders").num_rows(), b.table("orders").num_rows());
  const Table& oa = a.table("orders");
  const Table& ob = b.table("orders");
  for (int64_t r = 0; r < std::min<int64_t>(oa.num_rows(), 50); ++r) {
    EXPECT_EQ(oa.GetValue(r, "ts"), ob.GetValue(r, "ts"));
    EXPECT_EQ(oa.GetValue(r, "product_id"), ob.GetValue(r, "product_id"));
  }
}

TEST(ECommerceGenTest, DifferentSeedsDiffer) {
  ECommerceConfig cfg = SmallShop();
  Database a = MakeECommerceDb(cfg);
  cfg.seed = 6;
  Database b = MakeECommerceDb(cfg);
  EXPECT_NE(a.table("orders").num_rows(), b.table("orders").num_rows());
}

TEST(ECommerceGenTest, EventsWithinHorizon) {
  ECommerceConfig cfg = SmallShop();
  Database db = MakeECommerceDb(cfg);
  auto [lo, hi] = db.TimeRange();
  EXPECT_GE(lo, 0);
  EXPECT_LT(hi, Days(cfg.horizon_days));
}

TEST(ECommerceGenTest, QualityDrivesFutureActivity) {
  // The planted 2-hop signal: users whose first-half purchases have low
  // quality_score order less in the second half.
  ECommerceConfig cfg = SmallShop();
  cfg.num_users = 400;
  cfg.horizon_days = 120;
  Database db = MakeECommerceDb(cfg);
  const Table& orders = db.table("orders");
  const Table& products = db.table("products");
  auto idx = FkIndex::Build(orders, "user_id").value();
  const Timestamp mid = Days(60), end = Days(120);
  // Per-user activity retention (future/history) controls for the large
  // base-rate heterogeneity; only the satisfaction dynamics remain.
  double low_ret = 0, high_ret = 0;
  int64_t low_n = 0, high_n = 0;
  for (int64_t u = 1; u <= cfg.num_users; ++u) {
    auto hist = idx.RowsInWindow(u, 0, mid);
    if (hist.size() < 3) continue;
    double q = 0;
    for (int64_t r : hist) {
      int64_t pid = orders.GetValue(r, "product_id").as_int();
      int64_t prow = products.FindByPrimaryKey(pid).value();
      q += products.GetValue(prow, "quality_score").as_double();
    }
    q /= static_cast<double>(hist.size());
    const double future =
        AggregateWindow(idx, u, mid, end, AggKind::kCount, "").value();
    const double retention = future / static_cast<double>(hist.size());
    if (q < 0.4) {
      low_ret += retention;
      ++low_n;
    } else if (q > 0.65) {
      high_ret += retention;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 10);
  ASSERT_GT(high_n, 10);
  EXPECT_GT(high_ret / high_n, 1.4 * (low_ret / low_n))
      << "high-quality buyers should retain much more activity; high="
      << high_ret / high_n << " low=" << low_ret / low_n;
}

TEST(ClinicalGenTest, SchemaAndIntegrity) {
  ClinicalConfig cfg;
  cfg.num_patients = 100;
  cfg.horizon_days = 180;
  Database db = MakeClinicalDb(cfg);
  EXPECT_EQ(db.num_tables(), 6);
  EXPECT_TRUE(db.Validate().ok()) << db.Validate().ToString();
  EXPECT_EQ(db.table("patients").num_rows(), 100);
  EXPECT_GT(db.table("visits").num_rows(), 100);
  EXPECT_GT(db.table("diagnoses").num_rows(),
            db.table("visits").num_rows() - 1);
}

TEST(ClinicalGenTest, Deterministic) {
  ClinicalConfig cfg;
  cfg.num_patients = 60;
  cfg.horizon_days = 120;
  Database a = MakeClinicalDb(cfg);
  Database b = MakeClinicalDb(cfg);
  EXPECT_EQ(a.table("visits").num_rows(), b.table("visits").num_rows());
  EXPECT_EQ(a.table("diagnoses").num_rows(),
            b.table("diagnoses").num_rows());
}

TEST(ClinicalGenTest, ChronicCodesDriveRevisits) {
  ClinicalConfig cfg;
  cfg.num_patients = 300;
  cfg.horizon_days = 300;
  Database db = MakeClinicalDb(cfg);
  const Table& visits = db.table("visits");
  const Table& dx = db.table("diagnoses");
  const Table& codes = db.table("codes");
  auto visit_idx = FkIndex::Build(visits, "patient_id").value();
  auto dx_idx = FkIndex::Build(dx, "patient_id").value();
  const Timestamp mid = Days(150), end = Days(300);
  double risky_future = 0, safe_future = 0;
  int64_t risky_n = 0, safe_n = 0;
  for (int64_t p = 1; p <= cfg.num_patients; ++p) {
    auto hist = dx_idx.RowsInWindow(p, 0, mid);
    if (hist.empty()) continue;
    double risk = 0;
    for (int64_t r : hist) {
      int64_t code_id = dx.GetValue(r, "code_id").as_int();
      int64_t crow = codes.FindByPrimaryKey(code_id).value();
      risk += codes.GetValue(crow, "risk").as_double();
    }
    risk /= static_cast<double>(hist.size());
    const double future =
        AggregateWindow(visit_idx, p, mid, end, AggKind::kCount, "").value();
    if (risk > 0.6) {
      risky_future += future;
      ++risky_n;
    } else if (risk < 0.4) {
      safe_future += future;
      ++safe_n;
    }
  }
  ASSERT_GT(risky_n, 10);
  ASSERT_GT(safe_n, 10);
  EXPECT_GT(risky_future / risky_n, 1.3 * (safe_future / safe_n));
}

TEST(SocialGenTest, SchemaAndIntegrity) {
  SocialConfig cfg;
  cfg.num_users = 80;
  cfg.horizon_days = 60;
  Database db = MakeSocialDb(cfg);
  EXPECT_EQ(db.num_tables(), 5);
  EXPECT_TRUE(db.Validate().ok()) << db.Validate().ToString();
  EXPECT_EQ(db.table("users").num_rows(), 80);
  EXPECT_GT(db.table("follows").num_rows(), 80);
  EXPECT_GT(db.table("posts").num_rows(), 80);
}

TEST(SocialGenTest, Deterministic) {
  SocialConfig cfg;
  cfg.num_users = 50;
  cfg.horizon_days = 40;
  Database a = MakeSocialDb(cfg);
  Database b = MakeSocialDb(cfg);
  EXPECT_EQ(a.table("posts").num_rows(), b.table("posts").num_rows());
  EXPECT_EQ(a.table("comments").num_rows(), b.table("comments").num_rows());
}

TEST(SocialGenTest, FeedbackSustainsActivity) {
  SocialConfig cfg;
  cfg.num_users = 300;
  cfg.horizon_days = 120;
  Database db = MakeSocialDb(cfg);
  const Table& posts = db.table("posts");
  const Table& comments = db.table("comments");
  auto post_idx = FkIndex::Build(posts, "user_id").value();
  auto comment_on_post = FkIndex::Build(comments, "post_id").value();
  const Timestamp mid = Days(60), end = Days(120);
  double fed_future = 0, unfed_future = 0;
  int64_t fed_n = 0, unfed_n = 0;
  for (int64_t u = 1; u <= cfg.num_users; ++u) {
    auto hist = post_idx.RowsInWindow(u, 0, mid);
    if (hist.empty()) continue;
    double feedback = 0;
    for (int64_t r : hist) {
      int64_t pid = posts.PrimaryKey(r);
      feedback += static_cast<double>(comment_on_post.Rows(pid).size());
    }
    feedback /= static_cast<double>(hist.size());
    const double future =
        AggregateWindow(post_idx, u, mid, end, AggKind::kCount, "").value();
    if (feedback > 1.5) {
      fed_future += future;
      ++fed_n;
    } else if (feedback < 0.5) {
      unfed_future += future;
      ++unfed_n;
    }
  }
  ASSERT_GT(fed_n, 10);
  ASSERT_GT(unfed_n, 10);
  EXPECT_GT(fed_future / fed_n, 1.3 * (unfed_future / unfed_n));
}

}  // namespace
}  // namespace relgraph

# Empty dependencies file for relgraph_graph.
# This may be replaced when dependencies are built.

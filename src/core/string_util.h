#ifndef RELGRAPH_CORE_STRING_UTIL_H_
#define RELGRAPH_CORE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace relgraph {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins items with the given separator.
std::string Join(const std::vector<std::string>& items,
                 std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Formats a double with `digits` significant digits, trimming zeros.
std::string FormatDouble(double v, int digits = 6);

/// 64-bit FNV-1a hash of a string (used by the hashed-text feature encoder).
uint64_t Fnv1a64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace relgraph

#endif  // RELGRAPH_CORE_STRING_UTIL_H_

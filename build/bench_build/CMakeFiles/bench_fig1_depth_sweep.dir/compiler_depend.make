# Empty compiler generated dependencies file for bench_fig1_depth_sweep.
# This may be replaced when dependencies are built.

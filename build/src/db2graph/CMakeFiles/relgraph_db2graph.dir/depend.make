# Empty dependencies file for relgraph_db2graph.
# This may be replaced when dependencies are built.

#ifndef RELGRAPH_TENSOR_INIT_H_
#define RELGRAPH_TENSOR_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace relgraph {

/// Glorot/Xavier uniform init for a fan_in×fan_out weight matrix.
Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// He/Kaiming normal init (for ReLU networks).
Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

/// N(0, stddev) init, used for embedding tables.
Tensor NormalInit(int64_t rows, int64_t cols, float stddev, Rng* rng);

}  // namespace relgraph

#endif  // RELGRAPH_TENSOR_INIT_H_

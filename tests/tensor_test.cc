#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "core/rng.h"
#include "tensor/autograd.h"
#include "tensor/init.h"
#include "tensor/nn.h"
#include "tensor/optim.h"
#include "tensor/simd_kernels.h"
#include "tensor/tensor.h"

namespace relgraph {
namespace {

// ---------------------------------------------------------------- Tensor

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, Factories) {
  EXPECT_FLOAT_EQ(Tensor::Ones(2, 2).Sum(), 4.0f);
  EXPECT_FLOAT_EQ(Tensor::Full(3, 1, 2.5f).Sum(), 7.5f);
  Tensor id = Tensor::Identity(3);
  EXPECT_FLOAT_EQ(id.Sum(), 3.0f);
  EXPECT_FLOAT_EQ(id.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(id.at(0, 1), 0.0f);
  Tensor r = Tensor::Row({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  Tensor c = Tensor::Col({1, 2});
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 1);
}

TEST(TensorTest, Reductions) {
  Tensor t(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.AbsMax(), 4.0f);
  EXPECT_NEAR(t.Norm(), std::sqrt(30.0f), 1e-5);
}

TEST(TensorTest, MatMulCorrect) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, MatMulTransposedVariantsAgree) {
  Rng rng(5);
  Tensor a = NormalInit(4, 3, 1.0f, &rng);
  Tensor b = NormalInit(5, 3, 1.0f, &rng);
  Tensor ref = MatMul(a, b.Transposed());
  Tensor fast = MatMulBT(a, b);
  ASSERT_TRUE(ref.SameShape(fast));
  for (int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(ref.data()[i], fast.data()[i], 1e-4);
  }
  Tensor c = NormalInit(3, 6, 1.0f, &rng);
  Tensor d = NormalInit(3, 2, 1.0f, &rng);
  Tensor ref2 = MatMul(c.Transposed(), d);
  Tensor fast2 = MatMulAT(c, d);
  for (int64_t i = 0; i < ref2.numel(); ++i) {
    EXPECT_NEAR(ref2.data()[i], fast2.data()[i], 1e-4);
  }
}

TEST(TensorTest, GatherRows) {
  Tensor t(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = t.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b).at(0, 2), 9);
  EXPECT_FLOAT_EQ(Sub(a, b).at(0, 0), -3);
  EXPECT_FLOAT_EQ(Mul(a, b).at(0, 1), 10);
}

TEST(TensorTest, AddRowBroadcastAndSumRows) {
  Tensor m(2, 2, {1, 2, 3, 4});
  Tensor row(1, 2, {10, 20});
  Tensor out = AddRowBroadcast(m, row);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24);
  Tensor s = SumRows(m);
  EXPECT_FLOAT_EQ(s.at(0, 0), 4);
  EXPECT_FLOAT_EQ(s.at(0, 1), 6);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Tensor logits(2, 3, {1, 2, 3, -1, 0, 100});
  Tensor p = SoftmaxRows(logits);
  for (int64_t r = 0; r < 2; ++r) {
    float s = 0;
    for (int64_t c = 0; c < 3; ++c) {
      s += p.at(r, c);
      EXPECT_GE(p.at(r, c), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
  // Large logit saturates without NaN.
  EXPECT_NEAR(p.at(1, 2), 1.0f, 1e-5);
}

// --------------------------------------------------- numerical grad check

/// Checks analytic gradients of `loss_fn(inputs)` against central finite
/// differences over every entry of every input.
void CheckGradients(
    std::vector<VarPtr> inputs,
    const std::function<VarPtr(const std::vector<VarPtr>&)>& loss_fn,
    float eps = 1e-2f, float tol = 2e-2f) {
  VarPtr loss = loss_fn(inputs);
  for (auto& in : inputs) in->ZeroGrad();
  Backward(loss);
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    VarPtr in = inputs[vi];
    for (int64_t i = 0; i < in->value().numel(); ++i) {
      const float orig = in->value().data()[i];
      in->mutable_value().data()[i] = orig + eps;
      const float up = loss_fn(inputs)->value().item();
      in->mutable_value().data()[i] = orig - eps;
      const float down = loss_fn(inputs)->value().item();
      in->mutable_value().data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = in->grad().data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0f, std::fabs(numeric)))
          << "input " << vi << " element " << i;
    }
  }
}

Tensor RandT(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return NormalInit(r, c, 1.0f, &rng);
}

TEST(AutogradTest, MatMulGradient) {
  auto a = ag::Param(RandT(3, 4, 1));
  auto b = ag::Param(RandT(4, 2, 2));
  CheckGradients({a, b}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::MatMul(in[0], in[1]));
  });
}

TEST(AutogradTest, AddSubMulGradient) {
  auto a = ag::Param(RandT(2, 3, 3));
  auto b = ag::Param(RandT(2, 3, 4));
  CheckGradients({a, b}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Mul(ag::Add(in[0], in[1]), ag::Sub(in[0], in[1])));
  });
}

TEST(AutogradTest, BiasGradient) {
  auto x = ag::Param(RandT(4, 3, 5));
  auto b = ag::Param(RandT(1, 3, 6));
  CheckGradients({x, b}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::AddBias(in[0], in[1]));
  });
}

TEST(AutogradTest, ActivationGradients) {
  auto x = ag::Param(RandT(3, 3, 7));
  CheckGradients({x}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Tanh(in[0]));
  });
  auto y = ag::Param(RandT(3, 3, 8));
  CheckGradients({y}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Sigmoid(in[0]));
  });
  // ReLU checked away from the kink.
  auto z = ag::Param(Tensor(2, 2, {0.5f, -0.7f, 1.2f, -2.0f}));
  CheckGradients({z}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Relu(in[0]));
  });
  auto w = ag::Param(Tensor(2, 2, {0.5f, -0.7f, 1.2f, -2.0f}));
  CheckGradients({w}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::LeakyRelu(in[0], 0.1f));
  });
}

TEST(AutogradTest, ConcatGradient) {
  auto a = ag::Param(RandT(2, 2, 9));
  auto b = ag::Param(RandT(2, 3, 10));
  CheckGradients({a, b}, [](const std::vector<VarPtr>& in) {
    auto cat = ag::ConcatCols({in[0], in[1]});
    return ag::Sum(ag::Mul(cat, cat));
  });
}

TEST(AutogradTest, GatherRowsGradientWithDuplicates) {
  auto a = ag::Param(RandT(4, 2, 11));
  CheckGradients({a}, [](const std::vector<VarPtr>& in) {
    auto g = ag::GatherRows(in[0], {0, 2, 0, 3});
    return ag::Sum(ag::Mul(g, g));
  });
}

TEST(AutogradTest, SegmentSumGradient) {
  auto a = ag::Param(RandT(5, 2, 12));
  CheckGradients({a}, [](const std::vector<VarPtr>& in) {
    auto s = ag::SegmentSum(in[0], {0, 1, 0, 2, 1}, 3);
    return ag::Sum(ag::Mul(s, s));
  });
}

TEST(AutogradTest, SegmentMeanGradient) {
  auto a = ag::Param(RandT(5, 2, 13));
  CheckGradients({a}, [](const std::vector<VarPtr>& in) {
    auto s = ag::SegmentMean(in[0], {0, 1, 0, 2, 1}, 3);
    return ag::Sum(ag::Mul(s, s));
  });
}

TEST(AutogradTest, SegmentMeanEmptySegmentIsZero) {
  auto a = ag::Constant(Tensor(2, 1, {3.0f, 5.0f}));
  auto s = ag::SegmentMean(a, {0, 2}, 4);
  EXPECT_FLOAT_EQ(s->value().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s->value().at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(s->value().at(2, 0), 5.0f);
  EXPECT_FLOAT_EQ(s->value().at(3, 0), 0.0f);
}

TEST(AutogradTest, SegmentMaxForwardAndGradient) {
  auto a = ag::Constant(Tensor(4, 1, {1.0f, 7.0f, 3.0f, -2.0f}));
  auto s = ag::SegmentMax(a, {0, 0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(s->value().at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(s->value().at(1, 0), 3.0f);

  auto p = ag::Param(Tensor(4, 1, {1.0f, 7.0f, 3.0f, -2.0f}));
  auto loss = ag::Sum(ag::SegmentMax(p, {0, 0, 1, 1}, 2));
  Backward(loss);
  EXPECT_FLOAT_EQ(p->grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p->grad().at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(p->grad().at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(p->grad().at(3, 0), 0.0f);
}

TEST(AutogradTest, RowwiseDotGradient) {
  auto a = ag::Param(RandT(3, 4, 14));
  auto b = ag::Param(RandT(3, 4, 15));
  CheckGradients({a, b}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::RowwiseDot(in[0], in[1]));
  });
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  auto logits = ag::Param(RandT(4, 3, 16));
  std::vector<int64_t> labels = {0, 2, 1, 2};
  CheckGradients({logits}, [&labels](const std::vector<VarPtr>& in) {
    return ag::SoftmaxCrossEntropy(in[0], labels);
  });
}

TEST(AutogradTest, SoftmaxCrossEntropyValue) {
  // Uniform logits over k classes -> loss = log k.
  auto logits = ag::Constant(Tensor::Zeros(2, 4));
  auto loss = ag::SoftmaxCrossEntropy(logits, {1, 3});
  EXPECT_NEAR(loss->value().item(), std::log(4.0f), 1e-5);
}

TEST(AutogradTest, BceWithLogitsGradient) {
  auto logits = ag::Param(RandT(5, 1, 17));
  Tensor targets(5, 1, {1, 0, 1, 1, 0});
  CheckGradients({logits}, [&targets](const std::vector<VarPtr>& in) {
    return ag::BinaryCrossEntropyWithLogits(in[0], targets);
  });
}

TEST(AutogradTest, BceWithLogitsStableForExtremeLogits) {
  auto logits = ag::Constant(Tensor(2, 1, {100.0f, -100.0f}));
  Tensor targets(2, 1, {1.0f, 0.0f});
  auto loss = ag::BinaryCrossEntropyWithLogits(logits, targets);
  EXPECT_NEAR(loss->value().item(), 0.0f, 1e-5);
  EXPECT_FALSE(std::isnan(loss->value().item()));
}

TEST(AutogradTest, MseAndL1Gradient) {
  auto pred = ag::Param(RandT(4, 1, 18));
  Tensor targets(4, 1, {0.5f, -1.0f, 2.0f, 0.0f});
  CheckGradients({pred}, [&targets](const std::vector<VarPtr>& in) {
    return ag::MseLoss(in[0], targets);
  });
  auto pred2 = ag::Param(RandT(4, 1, 19));
  CheckGradients({pred2}, [&targets](const std::vector<VarPtr>& in) {
    return ag::L1Loss(in[0], targets);
  });
}

TEST(AutogradTest, GradAccumulatesAcrossSharedUse) {
  // y = x + x => dy/dx = 2.
  auto x = ag::Param(Tensor::Ones(2, 2));
  auto loss = ag::Sum(ag::Add(x, x));
  Backward(loss);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x->grad().data()[i], 2.0f);
}

TEST(AutogradTest, ConstantsGetNoGrad) {
  auto c = ag::Constant(Tensor::Ones(2, 2));
  auto x = ag::Param(Tensor::Ones(2, 2));
  auto loss = ag::Sum(ag::Mul(c, x));
  Backward(loss);
  EXPECT_FALSE(c->requires_grad());
  EXPECT_TRUE(x->requires_grad());
}

TEST(AutogradTest, DropoutTrainFalseIsIdentity) {
  Rng rng(20);
  auto x = ag::Param(RandT(3, 3, 21));
  auto y = ag::Dropout(x, 0.5f, &rng, false);
  EXPECT_EQ(y.get(), x.get());
}

TEST(AutogradTest, DropoutPreservesExpectation) {
  Rng rng(22);
  auto x = ag::Constant(Tensor::Ones(100, 100));
  auto y = ag::Dropout(x, 0.3f, &rng, true);
  EXPECT_NEAR(y->value().Mean(), 1.0f, 0.05f);
}

TEST(AutogradTest, ScaleAndMeanGradient) {
  auto x = ag::Param(RandT(3, 2, 23));
  CheckGradients({x}, [](const std::vector<VarPtr>& in) {
    return ag::Mean(ag::Scale(in[0], 3.0f));
  });
}

TEST(AutogradTest, ExpGradient) {
  auto x = ag::Param(RandT(3, 2, 24));
  CheckGradients({x}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Exp(in[0]));
  });
}

TEST(AutogradTest, DivGradient) {
  auto a = ag::Param(RandT(3, 2, 25));
  // Keep denominators away from zero.
  Tensor bt = RandT(3, 2, 26);
  for (int64_t i = 0; i < bt.numel(); ++i) {
    bt.data()[i] = 2.0f + std::fabs(bt.data()[i]);
  }
  auto b = ag::Param(bt);
  CheckGradients({a, b}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::Div(in[0], in[1]));
  });
}

TEST(AutogradTest, MulColBroadcastGradient) {
  auto a = ag::Param(RandT(4, 3, 27));
  auto w = ag::Param(RandT(4, 1, 28));
  CheckGradients({a, w}, [](const std::vector<VarPtr>& in) {
    return ag::Sum(ag::MulColBroadcast(in[0], in[1]));
  });
}

TEST(AutogradTest, SegmentSoftmaxSumsToOnePerSegment) {
  auto s = ag::Constant(Tensor(5, 1, {1.0f, 3.0f, -2.0f, 0.5f, 100.0f}));
  auto w = ag::SegmentSoftmax(s, {0, 0, 1, 1, 2}, 3);
  EXPECT_NEAR(w->value().at(0, 0) + w->value().at(1, 0), 1.0f, 1e-5);
  EXPECT_NEAR(w->value().at(2, 0) + w->value().at(3, 0), 1.0f, 1e-5);
  EXPECT_NEAR(w->value().at(4, 0), 1.0f, 1e-5);  // singleton, stable
  for (int64_t i = 0; i < 5; ++i) EXPECT_GT(w->value().at(i, 0), 0.0f);
}

TEST(AutogradTest, SegmentSoftmaxGradient) {
  auto s = ag::Param(RandT(6, 1, 29));
  std::vector<int64_t> ids = {0, 1, 0, 2, 1, 0};
  CheckGradients({s}, [&ids](const std::vector<VarPtr>& in) {
    auto w = ag::SegmentSoftmax(in[0], ids, 3);
    // Weighted sum against fixed coefficients so the gradient is nonzero.
    auto coef = ag::Constant(Tensor(6, 1, {1, -2, 3, 0.5f, -1, 2}));
    return ag::Sum(ag::Mul(w, coef));
  });
}

TEST(AutogradTest, LayerNormNormalizesRows) {
  auto x = ag::Constant(Tensor(2, 4, {1, 2, 3, 4, -10, 0, 10, 20}));
  auto gain = ag::Constant(Tensor::Ones(1, 4));
  auto bias = ag::Constant(Tensor::Zeros(1, 4));
  auto y = ag::LayerNorm(x, gain, bias);
  for (int64_t r = 0; r < 2; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 4; ++c) mean += y->value().at(r, c);
    mean /= 4.0;
    for (int64_t c = 0; c < 4; ++c) {
      var += (y->value().at(r, c) - mean) * (y->value().at(r, c) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(AutogradTest, LayerNormGradient) {
  auto x = ag::Param(RandT(3, 4, 60));
  auto gain = ag::Param(RandT(1, 4, 61));
  auto bias = ag::Param(RandT(1, 4, 62));
  CheckGradients({x, gain, bias}, [](const std::vector<VarPtr>& in) {
    auto y = ag::LayerNorm(in[0], in[1], in[2]);
    auto coef = ag::Constant(Tensor(3, 4, {1, -2, 0.5f, 3, -1, 2, 0.7f,
                                           -0.3f, 1.5f, -2.5f, 0.2f, 1}));
    return ag::Sum(ag::Mul(y, coef));
  });
}

TEST(NnTest, LayerNormModule) {
  LayerNorm ln(5);
  EXPECT_EQ(ln.NumParameters(), 10);
  auto x = ag::Constant(Tensor(2, 5, {1, 2, 3, 4, 5, 0, 0, 1, 0, 0}));
  auto y = ln.Forward(x);
  EXPECT_EQ(y->rows(), 2);
  EXPECT_EQ(y->cols(), 5);
  // Default gain=1, bias=0: row mean ~ 0.
  double mean = 0;
  for (int64_t c = 0; c < 5; ++c) mean += y->value().at(0, c);
  EXPECT_NEAR(mean / 5.0, 0.0, 1e-5);
}

// ---------------------------------------------------------------- Modules

TEST(NnTest, LinearShapesAndParamCount) {
  Rng rng(30);
  Linear lin(4, 3, &rng);
  EXPECT_EQ(lin.NumParameters(), 4 * 3 + 3);
  auto x = ag::Constant(Tensor::Ones(5, 4));
  auto y = lin.Forward(x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 3);
}

TEST(NnTest, LinearNoBias) {
  Rng rng(31);
  Linear lin(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 12);
  EXPECT_EQ(lin.Parameters().size(), 1u);
}

TEST(NnTest, EmbeddingLookup) {
  Rng rng(32);
  Embedding emb(10, 4, &rng);
  auto out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out->rows(), 3);
  EXPECT_EQ(out->cols(), 4);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out->value().at(0, c), out->value().at(1, c));
  }
}

TEST(NnTest, MlpForwardShape) {
  Rng rng(33);
  Mlp mlp({6, 8, 8, 2}, &rng);
  auto x = ag::Constant(Tensor::Ones(3, 6));
  auto y = mlp.Forward(x);
  EXPECT_EQ(y->rows(), 3);
  EXPECT_EQ(y->cols(), 2);
  EXPECT_EQ(mlp.Parameters().size(), 6u);
}

// ------------------------------------------------------------- Optimizers

TEST(OptimTest, SgdReducesQuadratic) {
  // Minimize ||w - t||^2.
  auto w = ag::Param(Tensor::Full(1, 3, 5.0f));
  Tensor target(1, 3, {1.0f, -2.0f, 0.5f});
  Sgd opt({w}, 0.1f);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    auto loss = ag::MseLoss(w, target);
    Backward(loss);
    opt.Step();
    if (step == 0) first_loss = loss->value().item();
    last_loss = loss->value().item();
  }
  EXPECT_LT(last_loss, first_loss * 1e-3f);
  EXPECT_NEAR(w->value().at(0, 1), -2.0f, 1e-2f);
}

TEST(OptimTest, SgdMomentumConvergesFaster) {
  auto run = [](float momentum) {
    auto w = ag::Param(Tensor::Full(1, 4, 3.0f));
    Tensor target = Tensor::Zeros(1, 4);
    Sgd opt({w}, 0.02f, momentum);
    float loss_v = 0;
    for (int step = 0; step < 50; ++step) {
      opt.ZeroGrad();
      auto loss = ag::MseLoss(w, target);
      Backward(loss);
      opt.Step();
      loss_v = loss->value().item();
    }
    return loss_v;
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(OptimTest, AdamSolvesLogisticRegression) {
  // Separable 2-D data; Adam-trained logistic regression should fit it.
  Rng rng(40);
  const int n = 200;
  Tensor x(n, 2);
  Tensor y(n, 1);
  for (int i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    x.at(i, 0) = static_cast<float>(rng.Normal(pos ? 2.0 : -2.0, 0.5));
    x.at(i, 1) = static_cast<float>(rng.Normal(pos ? -1.0 : 1.0, 0.5));
    y.at(i, 0) = pos ? 1.0f : 0.0f;
  }
  Linear lin(2, 1, &rng);
  Adam opt(lin.Parameters(), 0.05f);
  auto xv = ag::Constant(x);
  float loss_v = 1e9f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.ZeroGrad();
    auto loss = ag::BinaryCrossEntropyWithLogits(lin.Forward(xv), y);
    Backward(loss);
    opt.Step();
    loss_v = loss->value().item();
  }
  EXPECT_LT(loss_v, 0.05f);
}

TEST(OptimTest, WeightDecayShrinksWeights) {
  auto w = ag::Param(Tensor::Full(1, 2, 1.0f));
  // No data gradient at all: loss grad is zero, only decay acts.
  Adam opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 20; ++i) {
    opt.ZeroGrad();
    w->grad();  // ensure allocated zeros
    opt.Step();
  }
  EXPECT_LT(w->value().AbsMax(), 1.0f);
}

TEST(OptimTest, ClipGradNorm) {
  auto w = ag::Param(Tensor::Full(1, 4, 0.0f));
  Sgd opt({w}, 0.1f);
  w->grad().Fill(10.0f);  // norm = 20
  float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 20.0f, 1e-4);
  float post = 0;
  for (int64_t i = 0; i < 4; ++i) {
    post += w->grad().data()[i] * w->grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(post), 1.0f, 1e-4);
}

// ---------------------------------------------------------------- Init

TEST(InitTest, GlorotBoundsRespected) {
  Rng rng(50);
  Tensor w = GlorotUniform(100, 50, &rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.AbsMax(), limit + 1e-6f);
  EXPECT_GT(w.AbsMax(), limit * 0.5f);
  EXPECT_NEAR(w.Mean(), 0.0f, 0.01f);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(51);
  Tensor w = HeNormal(200, 100, &rng);
  double var = 0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    var += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  var /= w.numel();
  EXPECT_NEAR(var, 2.0 / 200.0, 2.0 / 200.0 * 0.15);
}

// -------------------------------------------------- SIMD microkernel parity
//
// Both kernel builds (AVX2 and the portable scalar twin) must match plain
// reference loops bit for bit — these tests pin the documented contracts at
// widths that exercise the vector remainder paths (n % 8 != 0, n % 16 != 0).

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
  return v;
}

TEST(KernelTest, ElementwiseKernelsMatchPlainLoopsAtOddWidths) {
  for (const int64_t n : {1, 3, 7, 8, 9, 16, 31, 33, 100, 257}) {
    const std::vector<float> a = RandVec(n, 60);
    const std::vector<float> b = RandVec(n, 61);
    std::vector<float> got(a), want(a);
    kern::AddInto(got.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] += b[i];
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "AddInto n=" << n;

    kern::SubOut(got.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] = a[i] - b[i];
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "SubOut n=" << n;

    kern::MulOut(got.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] = a[i] * b[i];
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "MulOut n=" << n;

    got = a;
    want = a;
    kern::ScaleInPlace(got.data(), 1.7f, n);
    for (int64_t i = 0; i < n; ++i) want[i] *= 1.7f;
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "ScaleInPlace n=" << n;

    got = a;
    want = a;
    kern::AxpyInto(got.data(), b.data(), -0.3f, n);
    for (int64_t i = 0; i < n; ++i) want[i] += -0.3f * b[i];
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "AxpyInto n=" << n;

    kern::ReluOut(got.data(), a.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] = std::max(0.0f, a[i]);
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "ReluOut n=" << n;

    got = b;
    want = b;
    kern::ReluGradAccum(got.data(), b.data(), a.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] += (a[i] > 0.0f) ? b[i] : 0.0f;
    EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
        << "ReluGradAccum n=" << n;
  }
}

TEST(KernelTest, ReluOutMapsNanToZero) {
  const float x[3] = {std::nanf(""), -1.0f, 2.0f};
  float o[3] = {9, 9, 9};
  kern::ReluOut(o, x, 3);
  EXPECT_EQ(o[0], 0.0f);
  EXPECT_EQ(o[1], 0.0f);
  EXPECT_EQ(o[2], 2.0f);
}

TEST(KernelTest, LaneDotMatchesDocumentedContract) {
  for (const int64_t k : {0, 1, 5, 7, 8, 9, 16, 23, 64, 100}) {
    const std::vector<float> a = RandVec(k, 70);
    const std::vector<float> b = RandVec(k, 71);
    // The contract spelled out longhand: lane l accumulates elements 8t+l,
    // lanes combine in the fixed tree, tail folds in ascending order.
    float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    const int64_t k8 = k - (k % 8);
    for (int64_t t = 0; t < k8; t += 8) {
      for (int l = 0; l < 8; ++l) lane[l] += a[t + l] * b[t + l];
    }
    float want = ((lane[0] + lane[4]) + (lane[2] + lane[6])) +
                 ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    for (int64_t i = k8; i < k; ++i) want += a[i] * b[i];
    const float got = kern::LaneDot(a.data(), b.data(), k);
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(float)), 0) << "k=" << k;
  }
}

TEST(KernelTest, MatMulBTOutputsAreLaneDots) {
  const Tensor a = RandT(7, 23, 72);
  const Tensor bt = RandT(5, 23, 73);
  const Tensor o = MatMulBT(a, bt);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      const float want =
          kern::LaneDot(a.data() + i * 23, bt.data() + j * 23, 23);
      EXPECT_EQ(o.at(i, j), want) << "i=" << i << " j=" << j;
    }
  }
}

TEST(KernelTest, MatMulPackedBitEqualsMatMul) {
  // Shapes with full panels, one partial panel, and sub-panel widths.
  const int64_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 33, 9}, {32, 64, 40}, {5, 8, 16}, {6, 10, 47}};
  for (const auto& s : shapes) {
    const Tensor a = RandT(s[0], s[1], 80);
    const Tensor b = RandT(s[1], s[2], 81);
    const Tensor want = MatMul(a, b);
    const PackedMatrix packed = PackForMatMul(b);
    const Tensor got = MatMulPacked(a, packed);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          static_cast<size_t>(want.numel()) * sizeof(float)),
              0)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(KernelTest, SoftmaxRowsMatchesExpRefReference) {
  const Tensor x = RandT(9, 37, 82);
  const Tensor got = SoftmaxRows(x);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * x.cols();
    const float m = kern::RowMax(row, x.cols());
    std::vector<float> e(static_cast<size_t>(x.cols()));
    double denom = 0.0;
    for (int64_t j = 0; j < x.cols(); ++j) {
      e[static_cast<size_t>(j)] = kern::ExpRef(row[j] - m);
      denom += static_cast<double>(e[static_cast<size_t>(j)]);
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < x.cols(); ++j) {
      const float want = e[static_cast<size_t>(j)] * inv;
      EXPECT_EQ(got.at(i, j), want) << "row " << i << " col " << j;
    }
  }
}

// ------------------------------------------------------- SliceRows views

TEST(SliceRowsTest, ViewIsZeroCopyIntoParentStorage) {
  auto a = ag::Param(RandT(6, 4, 90));
  auto s = ag::SliceRows(a, 2, 3);
  EXPECT_EQ(s->rows(), 3);
  EXPECT_EQ(s->cols(), 4);
  EXPECT_TRUE(s->value().is_view());
  EXPECT_EQ(s->value().data(), a->value().data() + 2 * 4);
}

TEST(SliceRowsTest, FullRangeReturnsParentNode) {
  auto a = ag::Param(RandT(4, 3, 91));
  auto s = ag::SliceRows(a, 0, 4);
  EXPECT_EQ(s.get(), a.get());
}

TEST(SliceRowsTest, ViewSurvivesParentScopeExit) {
  // The tape edge (wired even without grad) must keep the parent's storage
  // alive after the caller's handle to it goes away.
  VarPtr s;
  Tensor expected(1, 1);
  {
    Tensor t = RandT(5, 3, 92);
    expected = Tensor(1, 1);
    expected.at(0, 0) = t.at(2, 1);
    s = ag::SliceRows(ag::Constant(std::move(t)), 2, 2);
  }
  EXPECT_EQ(s->value().at(0, 1), expected.at(0, 0));
}

TEST(SliceRowsTest, BackwardScattersIntoParentRowsLikeGatherRows) {
  const Tensor weights = RandT(3, 4, 93);
  auto slice_parent = ag::Param(RandT(7, 4, 94));
  auto gather_parent = ag::Param(slice_parent->value());

  auto loss_a =
      ag::Sum(ag::Mul(ag::SliceRows(slice_parent, 2, 3), ag::Constant(weights)));
  Backward(loss_a);
  auto loss_b = ag::Sum(
      ag::Mul(ag::GatherRows(gather_parent, {2, 3, 4}), ag::Constant(weights)));
  Backward(loss_b);

  ASSERT_TRUE(slice_parent->value().SameShape(gather_parent->value()));
  EXPECT_EQ(std::memcmp(slice_parent->grad().data(),
                        gather_parent->grad().data(),
                        static_cast<size_t>(7 * 4) * sizeof(float)),
            0);
  // Rows outside the slice get exactly zero gradient.
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(slice_parent->grad().at(0, j), 0.0f);
    EXPECT_EQ(slice_parent->grad().at(6, j), 0.0f);
  }
}

TEST(SliceRowsTest, GradientMatchesFiniteDifferences) {
  auto a = ag::Param(RandT(5, 2, 95));
  CheckGradients({a}, [](const std::vector<VarPtr>& in) {
    auto s = ag::SliceRows(in[0], 1, 3);
    return ag::Sum(ag::Mul(s, s));
  });
}

TEST(AutogradTest, SegmentMeanEmptySegmentBackward) {
  auto a = ag::Param(Tensor(2, 1, {3.0f, 5.0f}));
  auto loss = ag::Sum(ag::SegmentMean(a, {0, 2}, 4));
  Backward(loss);
  // Each input is the sole member of its segment: d(mean)/dx = 1, and the
  // empty segments contribute nothing (no NaN from 0/0).
  EXPECT_FLOAT_EQ(a->grad().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a->grad().at(1, 0), 1.0f);
}

// ------------------------------------------------- packed-weight autograd

TEST(AutogradTest, MatMulPackedGradientsBitEqualMatMul) {
  auto x1 = ag::Param(RandT(6, 5, 96));
  auto w1 = ag::Param(RandT(5, 3, 97));
  auto x2 = ag::Param(x1->value());
  auto w2 = ag::Param(w1->value());

  auto packed = std::make_shared<const PackedMatrix>(PackForMatMul(w1->value()));
  auto loss1 = ag::Sum(ag::MatMulPacked(x1, packed, w1));
  Backward(loss1);
  auto loss2 = ag::Sum(ag::MatMul(x2, w2));
  Backward(loss2);

  EXPECT_EQ(loss1->value().item(), loss2->value().item());
  EXPECT_EQ(std::memcmp(x1->grad().data(), x2->grad().data(),
                        static_cast<size_t>(x1->value().numel()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(w1->grad().data(), w2->grad().data(),
                        static_cast<size_t>(w1->value().numel()) *
                            sizeof(float)),
            0);
}

TEST(NnTest, LinearRepacksAfterWeightUpdate) {
  Rng rng(98);
  Linear lin(4, 3, &rng);
  const Tensor x = RandT(2, 4, 99);

  auto y1 = lin.Forward(ag::Constant(x));
  Tensor want1 = MatMul(x, lin.weight()->value());
  // Packed forward must agree with the unpacked product (plus bias).
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(y1->value().at(i, j),
                want1.at(i, j) + lin.bias()->value().at(0, j));
    }
  }

  // An optimizer-style in-place update must invalidate the pack cache.
  lin.weight()->mutable_value().Scale(0.5f);
  auto y2 = lin.Forward(ag::Constant(x));
  Tensor want2 = MatMul(x, lin.weight()->value());
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(y2->value().at(i, j),
                want2.at(i, j) + lin.bias()->value().at(0, j));
    }
  }
}

}  // namespace
}  // namespace relgraph

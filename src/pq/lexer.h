#ifndef RELGRAPH_PQ_LEXER_H_
#define RELGRAPH_PQ_LEXER_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "pq/token.h"

namespace relgraph {

/// Tokenizes a predictive-query string. The returned vector always ends
/// with a kEnd token. Identifiers keep their original spelling; keyword
/// matching is done case-insensitively by the parser.
Result<std::vector<Token>> LexQuery(std::string_view text);

}  // namespace relgraph

#endif  // RELGRAPH_PQ_LEXER_H_

// Table 4 — Multiclass predictive queries (customer value tiers).
//
// "PREDICT BUCKET(SUM(orders.total), 1, 150) OVER NEXT 28 DAYS" assigns
// each user to a future-spend tier {low, mid, high}. The comparison set is
// smaller than the binary tables (GBDT/LINEAR are binary/regression-only
// by design), but the paper's shape still holds: the declarative GNN
// matches the tabular MLP on engineered features and clearly beats the
// majority-class floor.

#include "bench_util.h"

using namespace relgraph;
using namespace relgraph::bench;

int main() {
  struct Task {
    const char* name;
    Database db;
    std::string query;
  };
  std::vector<Task> tasks;
  tasks.push_back({"spend-tier", StandardECommerce(),
                   "PREDICT BUCKET(SUM(orders.total), 1, 150) OVER NEXT "
                   "28 DAYS FOR EACH users EVERY 14 DAYS "});
  tasks.push_back({"visit-tier", StandardClinical(),
                   "PREDICT BUCKET(COUNT(visits), 1, 3) OVER NEXT 60 DAYS "
                   "FOR EACH patients EVERY 30 DAYS "});

  const std::vector<std::pair<std::string, std::string>> models = {
      {"constant (majority)", "USING CONSTANT"},
      {"mlp hops=0", "USING MLP WITH hops=0"},
      {"mlp hops=2 (eng. features)", "USING MLP WITH hops=2"},
      {"gnn (declarative)",
       "USING GNN WITH layers=2, hidden=48, epochs=14, lr=0.01, "
       "patience=5, fanout=8, policy=recent, conv=gat, norm=true"},
  };

  std::vector<std::string> cols;
  for (const auto& t : tasks) cols.push_back(t.name);
  PrintHeader("Table 4: multiclass tiers (test accuracy)", cols);
  std::vector<std::unique_ptr<PredictiveQueryEngine>> engines;
  for (auto& t : tasks) {
    engines.push_back(std::make_unique<PredictiveQueryEngine>(&t.db));
  }
  for (const auto& [label, suffix] : models) {
    std::vector<double> row;
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      QueryResult r;
      row.push_back(Run(engines[ti].get(), tasks[ti].query + suffix, &r)
                        ? r.test_metric
                        : -1.0);
    }
    PrintRow(label, row);
  }
  std::printf("\nexpected shape: majority floor < hop-0 MLP < "
              "feature-engineered MLP ~= declarative GNN.\n");
  return 0;
}

#include "pq/lexer.h"

#include <cctype>

#include "core/string_util.h"

namespace relgraph {

bool Token::Is(const char* keyword) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, keyword);
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> LexQuery(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](TokenKind kind, std::string tok_text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.position = static_cast<int>(pos);
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, std::string(text.substr(start, i - start)),
           start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
                       ((text[i] == '+' || text[i] == '-') && i > start &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        ++i;
      }
      auto v = ParseDouble(text.substr(start, i - start));
      if (!v.ok()) {
        return Status::ParseError(StrFormat(
            "bad numeric literal at offset %zu: '%s'", start,
            std::string(text.substr(start, i - start)).c_str()));
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(text.substr(start, i - start));
      t.number = v.value();
      t.position = static_cast<int>(start);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(text[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      push(TokenKind::kString, std::move(value), start);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError(
            StrFormat("unexpected '!' at offset %zu", start));
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  out.push_back(std::move(end));
  return out;
}

}  // namespace relgraph

#include "core/fault_injection.h"

#include <cstdlib>

#include "core/string_util.h"

namespace relgraph {

namespace {

// splitmix64 finalizer: the (seed, hit-index) -> uniform draw behind the
// probabilistic mode. Full-avalanche, so consecutive hit indices give
// independent-looking draws from one seed.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

inline double UnitDraw(uint64_t seed, uint64_t index) {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Mix64(seed ^ Mix64(index)) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAtomicWriteOpen:
      return "atomic_write_open";
    case FaultSite::kAtomicWriteShort:
      return "atomic_write_short";
    case FaultSite::kAtomicWriteRename:
      return "atomic_write_rename";
    case FaultSite::kCsvCellCorrupt:
      return "csv_cell_corrupt";
    case FaultSite::kNanLoss:
      return "nan_loss";
    case FaultSite::kNanGradient:
      return "nan_gradient";
    case FaultSite::kServeSample:
      return "serve_sample";
    case FaultSite::kServeCheckpointLoad:
      return "serve_checkpoint_load";
    case FaultSite::kServeSnapshotAdvance:
      return "serve_snapshot_advance";
    case FaultSite::kServeAlloc:
      return "serve_alloc";
    case FaultSite::kAppendApply:
      return "append_apply";
    case FaultSite::kCompact:
      return "compact";
    case FaultSite::kNumSites:
      break;
  }
  return "?";
}

FaultSite FaultSiteFromName(const std::string& name) {
  for (size_t i = 0; i < static_cast<size_t>(FaultSite::kNumSites); ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    if (name == FaultSiteName(site)) return site;
  }
  return FaultSite::kNumSites;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(FaultSite site, int64_t skip, int64_t times) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[static_cast<size_t>(site)];
  s = SiteState{};
  s.armed = true;
  s.mode = Mode::kHitCount;
  s.skip = skip;
  s.times = times;
}

void FaultInjector::ArmProbability(FaultSite site, double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[static_cast<size_t>(site)];
  s = SiteState{};
  s.armed = true;
  s.mode = Mode::kProbability;
  s.probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  s.seed = seed;
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<size_t>(site)].armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sites_) s = SiteState{};
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("fault spec entry missing '=': " + entry);
    }
    const std::string name = entry.substr(0, eq);
    const std::string arg = entry.substr(eq + 1);
    const FaultSite site = FaultSiteFromName(name);
    if (site == FaultSite::kNumSites) {
      return Status::ParseError("unknown fault site: " + name);
    }
    if (arg.empty()) {
      return Status::ParseError("fault spec entry missing value: " + entry);
    }

    if (arg[0] == 'p') {
      // pP or pP@SEED — probabilistic.
      const size_t at = arg.find('@');
      const std::string p_str =
          at == std::string::npos ? arg.substr(1) : arg.substr(1, at - 1);
      auto p = ParseDouble(p_str);
      if (!p.ok()) {
        return Status::ParseError("bad fault probability in: " + entry);
      }
      uint64_t seed = 1;
      if (at != std::string::npos) {
        auto parsed = ParseInt64(arg.substr(at + 1));
        if (!parsed.ok()) {
          return Status::ParseError("bad fault seed in: " + entry);
        }
        seed = static_cast<uint64_t>(parsed.value());
      }
      ArmProbability(site, p.value(), seed);
    } else if (arg[0] == '+') {
      // +SxN — skip S hits, then fire N times.
      const size_t x = arg.find('x');
      if (x == std::string::npos) {
        return Status::ParseError("fault spec '+SxN' missing 'x': " + entry);
      }
      auto skip = ParseInt64(arg.substr(1, x - 1));
      auto times = ParseInt64(arg.substr(x + 1));
      if (!skip.ok() || !times.ok()) {
        return Status::ParseError("bad fault hit counts in: " + entry);
      }
      Arm(site, skip.value(), times.value());
    } else {
      // N — fire the first N hits (N < 0: forever).
      auto times = ParseInt64(arg);
      if (!times.ok()) {
        return Status::ParseError("bad fault count in: " + entry);
      }
      Arm(site, 0, times.value());
    }
  }
  return Status::OK();
}

Result<int> FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("RELGRAPH_FAULTS");
  if (env == nullptr || env[0] == '\0') return 0;
  RELGRAPH_RETURN_IF_ERROR(ArmFromSpec(env));
  int armed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : sites_) {
      if (s.armed) ++armed;
    }
  }
  return armed;
}

bool FaultInjector::ShouldFire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[static_cast<size_t>(site)];
  if (!s.armed) return false;
  const int64_t hit = s.hits++;
  bool fire = false;
  if (s.mode == Mode::kHitCount) {
    fire = hit >= s.skip && (s.times < 0 || hit - s.skip < s.times);
  } else {
    fire = UnitDraw(s.seed, static_cast<uint64_t>(hit)) < s.probability;
  }
  if (fire) ++s.fired;
  return fire;
}

int64_t FaultInjector::hits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].hits;
}

int64_t FaultInjector::fired(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].fired;
}

}  // namespace relgraph

#ifndef RELGRAPH_DATAGEN_CLINICAL_H_
#define RELGRAPH_DATAGEN_CLINICAL_H_

#include <cstdint>

#include "relational/database.h"

namespace relgraph {

/// Parameters of the synthetic clinical (EHR-style) world.
struct ClinicalConfig {
  int64_t num_patients = 800;
  int64_t num_codes = 40;
  int64_t num_drugs = 30;
  int64_t horizon_days = 365;
  uint64_t seed = 7;

  /// Mean days between visits for a baseline-risk patient.
  double mean_visit_interval_days = 60.0;
};

/// Builds a deterministic relational clinical database:
///
///   codes(id PK, name, chronic, risk)
///   drugs(id PK, name, effectiveness)
///   patients(id PK, age, sex)
///   visits(id PK, patient_id -> patients, ts TIME, severity)
///   diagnoses(id PK, patient_id -> patients, visit_id -> visits,
///             code_id -> codes, ts TIME)
///   prescriptions(id PK, patient_id -> patients, visit_id -> visits,
///                 drug_id -> drugs, ts TIME)
///
/// Planted signal: each patient carries a latent risk that is raised by
/// high-risk diagnosis codes (chronic codes recur) and lowered by effective
/// prescriptions; the visit (and hence readmission) rate is proportional to
/// it. Code risk is observable on the `codes` table, two FK hops from the
/// patient, so a 2-layer GNN sees what single-table baselines cannot.
Database MakeClinicalDb(const ClinicalConfig& config);

}  // namespace relgraph

#endif  // RELGRAPH_DATAGEN_CLINICAL_H_

#ifndef RELGRAPH_GNN_HETERO_SAGE_H_
#define RELGRAPH_GNN_HETERO_SAGE_H_

#include <memory>
#include <vector>

#include "sampler/subgraph.h"
#include "tensor/nn.h"

namespace relgraph {

/// Neighbor aggregation used inside HeteroSage layers.
enum class GnnAggregation { kMean, kSum, kMax };

/// Convolution flavour: plain GraphSAGE aggregation or GAT-style
/// per-edge attention (softmax over sampled neighbors).
enum class GnnConv { kSage, kAttention };

/// Hyper-parameters of the heterogeneous GraphSAGE encoder.
struct GnnConfig {
  int64_t hidden_dim = 64;

  /// Number of message-passing layers; must match the sampler's fanout
  /// depth (each layer consumes one frontier).
  int64_t num_layers = 2;

  float dropout = 0.0f;

  GnnAggregation aggregation = GnnAggregation::kMean;

  /// kAttention replaces the fixed aggregation with learned attention
  /// weights alpha(u,v) = softmax_u LeakyReLU(a_s.h_u + a_t.h_v) per edge
  /// type (GATv1-style, single head).
  GnnConv conv = GnnConv::kSage;

  /// Applies learnable layer normalization to each layer's pre-activation
  /// output (one LayerNorm per layer, shared across node types).
  bool layer_norm = false;

  /// Appends two relative-time inputs to every node's raw features:
  /// log1p(days between the node's event and the seed's cutoff) and an
  /// is-static flag. Without this, temporal recency is invisible to the
  /// model (event timestamps are deliberately excluded from column
  /// features to avoid leakage).
  bool time_encoding = true;

  /// Appends, per outgoing edge type, log1p(pre-cutoff degree) to every
  /// node's raw features. Mean aggregation normalizes counts away; this
  /// restores activity-volume signal (e.g. "how many orders so far").
  bool degree_encoding = true;
};

/// Heterogeneous GraphSAGE over sampled subgraphs.
///
/// Architecture (the standard relational-deep-learning encoder):
///   - a per-node-type linear encoder maps raw table features to a shared
///     hidden width;
///   - each layer computes, per node type,
///       h_v = ReLU( W_self^{type} h_v + Σ_e W_e · agg_{u∈N_e(v)} h_u + b )
///     with one W_e per edge (FK) type, aggregating over the sampled block
///     edges only;
///   - the output is the embedding of the seed nodes (frontier 0).
///
/// The model is tied to one HeteroGraph's type/feature layout but not to
/// its data; any Subgraph sampled from a graph with the same layout works.
class HeteroSageModel : public Module {
 public:
  HeteroSageModel(const HeteroGraph* graph, const GnnConfig& config,
                  Rng* rng);

  /// Runs message passing over `sg` (which must have been sampled with
  /// depth == config.num_layers) and returns the seed embeddings
  /// [num_seeds × hidden_dim]. Reads features from the bound graph.
  VarPtr Forward(const Subgraph& sg, NodeTypeId seed_type, Rng* rng,
                 bool training) const;

  /// Forward over an explicit data graph with the IDENTICAL layout as the
  /// bound one, without rebinding. This is the epoch-snapshot serving
  /// entry: concurrent readers each pass their own pinned snapshot's
  /// graph, so the model itself stays read-only and multiple forwards over
  /// different snapshot versions can run at once.
  ///
  /// `precision` selects the storage precision of every Linear in the
  /// encoder (kFp32 is exactly the training forward; kBf16/kInt8 are
  /// inference-only — `training` must be false). Node features stored
  /// quantized on `graph` are dequantized per element regardless of
  /// `precision` (feature storage and compute precision are independent
  /// knobs).
  VarPtr ForwardOn(const HeteroGraph* graph, const Subgraph& sg,
                   NodeTypeId seed_type, Rng* rng, bool training,
                   Precision precision = Precision::kFp32) const;

  std::vector<VarPtr> Parameters() const override;

  /// Swaps the underlying data graph for another with the IDENTICAL
  /// type/feature layout (same node/edge types, endpoints, and feature
  /// widths) — e.g. a fresher snapshot of the same database. Weights are
  /// untouched; a layout mismatch aborts.
  void RebindGraph(const HeteroGraph* graph);

  const GnnConfig& config() const { return config_; }

 private:
  struct Layer {
    /// Per node type: self transform (with bias).
    std::vector<std::unique_ptr<Linear>> self;
    /// Per edge type: message transform (no bias).
    std::vector<std::unique_ptr<Linear>> message;
    /// Per edge type: attention score vectors (kAttention only).
    std::vector<VarPtr> att_src;
    std::vector<VarPtr> att_dst;
    /// Pre-activation normalization (layer_norm only).
    std::unique_ptr<class LayerNorm> norm;
  };

  /// Raw input features for the deepest frontier of one node type,
  /// including the time/degree encodings, read from `graph`.
  Tensor InputFeatures(const HeteroGraph* graph, NodeTypeId type,
                       const std::vector<int64_t>& nodes,
                       const std::vector<Timestamp>& cutoffs) const;

  const HeteroGraph* graph_;
  GnnConfig config_;
  /// Per node type: edge types whose source is that type (degree features).
  std::vector<std::vector<EdgeTypeId>> out_edge_types_;
  /// Per node type: raw-features -> hidden encoder.
  std::vector<std::unique_ptr<Linear>> encoders_;
  std::vector<Layer> layers_;
};

}  // namespace relgraph

#endif  // RELGRAPH_GNN_HETERO_SAGE_H_

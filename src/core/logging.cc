#include "core/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/metrics.h"
#include "core/string_util.h"

namespace relgraph {

namespace {

constexpr int kUninitialized = -1;

/// -1 until the first read, which resolves RELGRAPH_LOG_LEVEL (explicit
/// SetLogLevel calls store directly and therefore beat the environment).
std::atomic<int> g_min_level{kUninitialized};

int LevelFromEnv() {
  const char* env = std::getenv("RELGRAPH_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  const std::string v = ToLower(env);
  if (v == "debug" || v == "0") return static_cast<int>(LogLevel::kDebug);
  if (v == "info" || v == "1") return static_cast<int>(LogLevel::kInfo);
  if (v == "warning" || v == "warn" || v == "2") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (v == "error" || v == "3") return static_cast<int>(LogLevel::kError);
  std::fprintf(stderr,
               "[WARN logging.cc] unrecognized RELGRAPH_LOG_LEVEL '%s' "
               "(want debug|info|warning|error); using info\n",
               env);
  return static_cast<int>(LogLevel::kInfo);
}

int MinLevel() {
  int v = g_min_level.load(std::memory_order_relaxed);
  if (v == kUninitialized) {
    // Benign race: concurrent first reads resolve the same env value.
    v = LevelFromEnv();
    g_min_level.store(v, std::memory_order_relaxed);
  }
  return v;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(MinLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < MinLevel()) return;
  // Warnings and errors count even when metrics dumping never happens:
  // tests assert on warning emission through this counter.
  if (level_ >= LogLevel::kWarning) {
    RELGRAPH_COUNTER_INC("log_warnings_total");
  }
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream().str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace relgraph

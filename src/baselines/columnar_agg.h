#ifndef RELGRAPH_BASELINES_COLUMNAR_AGG_H_
#define RELGRAPH_BASELINES_COLUMNAR_AGG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time.h"
#include "db2graph/feature_encoder.h"
#include "relational/database.h"
#include "tensor/tensor.h"

namespace relgraph {

/// The aggregation vocabulary of the columnar group-by engine — the
/// getml-style function set a feature-engineering practitioner reaches
/// for. kCount / kCountDistinct / kRecency are structural (evaluated per
/// relation or per key column); the rest apply to a numeric value column
/// over the rows of one (entity, window, cutoff) group.
enum class ColumnarAgg {
  kCount,          ///< non-null values of the column (rows for relations)
  kCountDistinct,  ///< distinct non-null values
  kSum,
  kAvg,            ///< mean (named "mean" in feature names)
  kMin,
  kMax,
  kMedian,
  kQ25,            ///< lower quartile (linear interpolation)
  kQ75,            ///< upper quartile
  kStddev,         ///< population standard deviation
  kSkew,           ///< standardized third central moment
  kFirst,          ///< earliest non-null value in event-time order
  kLast,           ///< latest non-null value in event-time order
  kRecency,        ///< relation-level; not valid as a value aggregate
};

/// Display name used in feature names ("mean" for kAvg, etc.).
const char* ColumnarAggName(ColumnarAgg agg);

/// The full value-aggregate vocabulary (everything except the structural
/// count/recency kinds) — what the strong tabular baseline uses.
std::vector<ColumnarAgg> FullAggVocabulary();

/// Configuration of the columnar aggregation engine.
struct ColumnarAggOptions {
  /// Lookback windows ending at the cutoff.
  std::vector<Duration> windows = {Days(7), Days(30), Days(10000)};

  /// Aggregates evaluated per (value column, window). kRecency is
  /// rejected here; use `recency_features`.
  std::vector<ColumnarAgg> value_aggs = {ColumnarAgg::kAvg};

  /// Emit count_distinct over the child table's non-entity FK columns
  /// (e.g. "distinct products ordered in the window").
  bool count_distinct = true;

  /// Emit a paired 0/1 "present" column per (value column, window) so a
  /// 0-valued aggregate over an empty window is distinguishable from a
  /// true zero. NaN-free by construction (GBDT- and GNN-safe).
  bool missing_indicators = true;

  /// 1 = aggregates of child-table columns; 2 adds aggregates of the
  /// attributes of rows the child's other FKs point to.
  int max_hops = 2;

  /// Adds log(1 + days since the entity's last child event before the
  /// cutoff) per relation, independent of the window set.
  bool recency_features = true;

  /// Entity rows per parallel chunk. Chunk boundaries are a pure function
  /// of (num_query_rows, grain) — never of the thread count — and each
  /// output row is written by exactly one chunk with a fixed per-aggregate
  /// accumulation order, so results are bit-identical at any parallelism.
  int64_t parallel_grain = 64;
};

/// Parallel columnar group-by/aggregation engine over FK edges.
///
/// Build() freezes a columnar layout: for every child table with an FK
/// into the entity table, the child rows are grouped per entity row (in
/// FkIndex event-time order, static rows first) and the value columns —
/// including hop-2 attributes resolved through the child's other FKs —
/// are materialized into flat double arrays aligned with that grouping.
/// Compute() then answers (entity_row, cutoff) feature requests with
/// contiguous scans: per group, the window [cutoff - w, cutoff) is a
/// binary-searched slice of the time-sorted slot range.
///
/// Determinism contract (same as core/parallel): Compute() distributes
/// query rows over the pool in fixed-grain chunks and every aggregate
/// accumulates in ascending slot order, so Compute() is bit-identical to
/// ComputeSerial() at any thread count. Tests and benches gate on exact
/// equality.
class ColumnarAggregator {
 public:
  /// Builds the columnar layout for `entity_table` in `db`.
  static Result<ColumnarAggregator> Build(const Database& db,
                                          const std::string& entity_table,
                                          ColumnarAggOptions options = {});

  /// Aggregate feature matrix for (entity_row, cutoff) pairs; rows align
  /// with the inputs. Chunked-parallel on the global pool.
  Tensor Compute(const std::vector<int64_t>& entity_rows,
                 const std::vector<Timestamp>& cutoffs) const;

  /// Serial reference path — the differential oracle the parallel path is
  /// tested against (bit-identical by contract).
  Tensor ComputeSerial(const std::vector<int64_t>& entity_rows,
                       const std::vector<Timestamp>& cutoffs) const;

  /// Writes the aggregate block into out[:, col_offset .. col_offset+dim)
  /// (rows align with entity_rows). Both public Compute paths route here.
  void ComputeInto(const std::vector<int64_t>& entity_rows,
                   const std::vector<Timestamp>& cutoffs, Tensor* out,
                   int64_t col_offset, bool parallel) const;

  /// Names of the produced feature columns ("h1.mean(orders.total)@30d",
  /// "h1.count_distinct(orders.product_id)@7d", "h1.recency(orders)", ...).
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  int64_t dim() const { return static_cast<int64_t>(feature_names_.size()); }

  /// Child relations (FKs into the entity table) found at build time.
  int64_t num_relations() const {
    return static_cast<int64_t>(relations_.size());
  }

  const ColumnarAggOptions& options() const { return options_; }

 private:
  /// One materialized value column, slot-aligned with the relation's
  /// grouped layout. hop 2 columns hold parent attributes resolved at
  /// build time (invalid when the FK is null/dangling or the attribute
  /// is null).
  struct ValueColumn {
    std::string label;  // "orders.total" / "orders.product_id->products.price"
    std::vector<double> vals;
    std::vector<uint8_t> valid;
  };
  /// A key column for count_distinct (the child's non-entity FKs).
  struct DistinctColumn {
    std::string label;  // "orders.product_id"
    std::vector<int64_t> vals;
    std::vector<uint8_t> valid;
  };
  struct Relation {
    std::string table;
    /// Per entity row, the slot range [offsets[r], offsets[r+1]) of its
    /// grouped child rows; within a group, static rows (no event time)
    /// come first — [offsets[r], static_end[r]) — then timed rows in
    /// ascending event-time order.
    std::vector<int64_t> offsets;
    std::vector<int64_t> static_end;
    std::vector<Timestamp> times;  // slot-aligned event times
    std::vector<ValueColumn> values;
    std::vector<DistinctColumn> distincts;
    int64_t base_col = 0;    // first output column of this relation
    int64_t per_window = 0;  // output columns per window
    int64_t recency_col = -1;
  };
  struct Scratch {
    std::vector<double> sorted;
    std::vector<int64_t> keys;
  };

  void ComputeRow(int64_t out_row, int64_t entity_row, Timestamp cutoff,
                  Tensor* out, int64_t col_offset, Scratch* scratch) const;

  ColumnarAggOptions options_;
  int64_t num_entity_rows_ = 0;
  bool need_sorted_ = false;    // any quantile aggregate requested
  bool need_distinct_ = false;  // kCountDistinct as a value aggregate
  std::vector<Relation> relations_;
  std::vector<std::string> feature_names_;
};

/// Aggregate matrix for every entity row at one fixed cutoff, z-scored
/// per column (constant columns encode as 0), packaged as an EncodedTable
/// for GraphBuilderOptions::hybrid_blocks — the hybrid GNN+tabular input
/// path. Feature names are prefixed "agg.". Choose a cutoff no later than
/// the earliest training cutoff to keep the block leakage-free.
Result<EncodedTable> BuildHybridAggBlock(const Database& db,
                                         const std::string& entity_table,
                                         Timestamp cutoff,
                                         const ColumnarAggOptions& options = {});

}  // namespace relgraph

#endif  // RELGRAPH_BASELINES_COLUMNAR_AGG_H_

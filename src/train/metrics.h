#ifndef RELGRAPH_TRAIN_METRICS_H_
#define RELGRAPH_TRAIN_METRICS_H_

#include <cstdint>
#include <vector>

namespace relgraph {

/// Classification accuracy of thresholded scores against {0,1} labels.
double Accuracy(const std::vector<double>& scores,
                const std::vector<double>& labels, double threshold = 0.5);

/// Multiclass accuracy of argmax predictions.
double MulticlassAccuracy(const std::vector<int64_t>& predictions,
                          const std::vector<double>& labels);

/// Area under the ROC curve via the rank statistic (ties handled by
/// midranks). Returns 0.5 when one class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<double>& labels);

/// Binary F1 at the given threshold.
double F1Binary(const std::vector<double>& scores,
                const std::vector<double>& labels, double threshold = 0.5);

/// Average binary cross-entropy of probability scores (clipped).
double LogLoss(const std::vector<double>& probs,
               const std::vector<double>& labels);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<double>& targets);

/// Coefficient of determination (1 - SSE/SST); 0 when targets are constant.
double R2Score(const std::vector<double>& predictions,
               const std::vector<double>& targets);

/// Mean average precision at k: `ranked` holds, per query, candidate ids in
/// descending score order; `relevant` the ground-truth id sets. Queries
/// with no relevant items are skipped.
double MeanAveragePrecisionAtK(
    const std::vector<std::vector<int64_t>>& ranked,
    const std::vector<std::vector<int64_t>>& relevant, int64_t k);

/// Mean recall at k over the same inputs.
double RecallAtK(const std::vector<std::vector<int64_t>>& ranked,
                 const std::vector<std::vector<int64_t>>& relevant,
                 int64_t k);

}  // namespace relgraph

#endif  // RELGRAPH_TRAIN_METRICS_H_

// Randomized fuzz tests for the predictive-query front end.
//
// The lexer and parser take arbitrary user strings, so they must never
// crash: every malformed input returns a Status, and every well-formed
// query round-trips through ParsedQuery::ToString(). All randomness is
// seeded — a failure reproduces from the seed printed in the assertion
// message.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rng.h"
#include "pq/lexer.h"
#include "pq/parser.h"

namespace relgraph {
namespace {

// Vocabulary skewed toward grammar fragments so random streams exercise
// deep parser paths, not just the first-token rejection.
const char* const kVocab[] = {
    "PREDICT", "COUNT",   "SUM",     "AVG",    "MIN",     "MAX",
    "EXISTS",  "LIST",    "BUCKET",  "OVER",   "NEXT",    "LAST",
    "FOR",     "EACH",    "WHERE",   "AND",    "AS",      "CLASSIFICATION",
    "REGRESSION", "RANKING", "OF",   "USING",  "WITH",    "SPLIT",
    "AT",      "EVERY",   "DAYS",    "HOURS",  "WEEKS",   "orders",
    "users",   "products", "total",  "country", "premium", "GNN",
    "GBDT",    "MLP",     "(",       ")",      ",",       ".",
    "*",       "=",       "!=",      "<>",     "<",       "<=",
    ">",       ">=",      "0",       "1",      "28",      "3.5",
    "-7",      "'de'",    "''",      "1e9",    "0.0001",  "predict",
    "over",    "next",    "for",     "each",
};

constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

// Queries covering every clause of the grammar; the round-trip and
// mutation fuzzers grow from these.
const char* const kWellFormed[] = {
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users",
    "PREDICT COUNT(orders) OVER NEXT 7 DAYS FOR EACH users",
    "PREDICT SUM(orders.total) OVER NEXT 2 WEEKS FOR EACH users "
    "USING GBDT",
    "PREDICT AVG(reviews.rating) < 3 OVER NEXT 30 DAYS FOR EACH products",
    "PREDICT EXISTS(visits) OVER NEXT 24 HOURS FOR EACH users "
    "WHERE country = 'de'",
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "WHERE premium = 1 AND country != 'fr'",
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "WHERE COUNT(orders) OVER LAST 21 DAYS > 0",
    "PREDICT BUCKET(COUNT(orders), 1, 5) OVER NEXT 28 DAYS FOR EACH users",
    "PREDICT LIST(orders.product_id) OVER NEXT 28 DAYS FOR EACH users "
    "AS RANKING OF products USING POPULAR",
    "PREDICT SUM(orders.total) OVER NEXT 28 DAYS FOR EACH users "
    "AS REGRESSION USING GNN WITH layers=2, hidden=32, epochs=4",
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "EVERY 14 DAYS",
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "SPLIT AT 120 DAYS, 150 DAYS",
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users "
    "USING GNN WITH fanout=8, temporal=true, policy='recent'",
};

constexpr size_t kNumWellFormed =
    sizeof(kWellFormed) / sizeof(kWellFormed[0]);

std::string RandomTokenStream(Rng* rng) {
  const int len = 1 + static_cast<int>(rng->UniformU64(24));
  std::string s;
  for (int i = 0; i < len; ++i) {
    if (i > 0) s += ' ';
    s += kVocab[rng->UniformU64(kVocabSize)];
  }
  return s;
}

// Raw bytes, including characters no token accepts.
std::string RandomBytes(Rng* rng) {
  const int len = static_cast<int>(rng->UniformU64(40));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>(1 + rng->UniformU64(127));
  }
  return s;
}

// ------------------------------------------------------- never crashes

TEST(PqFuzzTest, RandomTokenStreamsNeverCrash) {
  int parsed_ok = 0;
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const std::string query = RandomTokenStream(&rng);
    auto lexed = LexQuery(query);  // must return, never crash
    auto result = ParseQuery(query);
    if (result.ok()) {
      ++parsed_ok;
      // Whatever parsed must render and re-parse.
      auto again = ParseQuery(result.value().ToString());
      EXPECT_TRUE(again.ok())
          << "seed " << seed << ": round-trip of accidentally-valid "
          << "query failed\n  input:    " << query
          << "\n  rendered: " << result.value().ToString();
    } else {
      EXPECT_FALSE(result.status().message().empty())
          << "seed " << seed << ": error without a message for: " << query;
    }
  }
  // Random streams are overwhelmingly malformed; the assertion is only
  // that the count is sane (the parser rejected them via Status).
  EXPECT_LT(parsed_ok, 1000);
}

TEST(PqFuzzTest, RandomBytesNeverCrash) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(0xB17E5 ^ (seed * 0x9E3779B97F4A7C15ULL));
    const std::string query = RandomBytes(&rng);
    auto lexed = LexQuery(query);
    auto result = ParseQuery(query);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << "seed " << seed;
    }
  }
}

// --------------------------------------------------------- round trips

TEST(PqFuzzTest, WellFormedQueriesRoundTrip) {
  for (size_t i = 0; i < kNumWellFormed; ++i) {
    auto first = ParseQuery(kWellFormed[i]);
    ASSERT_TRUE(first.ok()) << kWellFormed[i] << "\n  "
                            << first.status().ToString();
    const std::string rendered = first.value().ToString();
    auto second = ParseQuery(rendered);
    ASSERT_TRUE(second.ok())
        << "rendering does not re-parse\n  original: " << kWellFormed[i]
        << "\n  rendered: " << rendered << "\n  "
        << second.status().ToString();
    // Fixed point: print(parse(print(parse(q)))) == print(parse(q)).
    EXPECT_EQ(second.value().ToString(), rendered) << kWellFormed[i];
  }
}

// ------------------------------------------------------ mutation fuzz

// Splits a query into whitespace-separated chunks, applies one random
// mutation (delete / duplicate / swap / replace-with-vocab), rejoins.
std::string Mutate(const std::string& query, Rng* rng) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : query) {
    if (c == ' ') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  if (parts.empty()) return query;
  const size_t pos = rng->UniformU64(parts.size());
  switch (rng->UniformU64(4)) {
    case 0:
      parts.erase(parts.begin() + static_cast<int64_t>(pos));
      break;
    case 1:
      parts.insert(parts.begin() + static_cast<int64_t>(pos), parts[pos]);
      break;
    case 2: {
      const size_t other = rng->UniformU64(parts.size());
      std::swap(parts[pos], parts[other]);
      break;
    }
    default:
      parts[pos] = kVocab[rng->UniformU64(kVocabSize)];
      break;
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ' ';
    out += parts[i];
  }
  return out;
}

TEST(PqFuzzTest, MutatedWellFormedQueriesNeverCrash) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(0xF00D ^ (seed * 0x2545F4914F6CDD1DULL));
    std::string query = kWellFormed[seed % kNumWellFormed];
    const int rounds = 1 + static_cast<int>(rng.UniformU64(3));
    for (int r = 0; r < rounds; ++r) query = Mutate(query, &rng);
    auto result = ParseQuery(query);
    if (result.ok()) {
      auto again = ParseQuery(result.value().ToString());
      EXPECT_TRUE(again.ok())
          << "seed " << seed << ": mutant parsed but did not round-trip: "
          << query;
    }
  }
}

// Lexer-level invariant: every successful lex ends in exactly one kEnd.
TEST(PqFuzzTest, LexedStreamsEndWithEndToken) {
  for (uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed + 77);
    auto lexed = LexQuery(RandomTokenStream(&rng));
    if (!lexed.ok()) continue;
    const auto& tokens = lexed.value();
    ASSERT_FALSE(tokens.empty()) << "seed " << seed;
    EXPECT_EQ(tokens.back().kind, TokenKind::kEnd) << "seed " << seed;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      EXPECT_NE(tokens[i].kind, TokenKind::kEnd)
          << "seed " << seed << ": interior end token at " << i;
    }
  }
}

}  // namespace
}  // namespace relgraph

#ifndef RELGRAPH_TRAIN_RECOMMENDER_H_
#define RELGRAPH_TRAIN_RECOMMENDER_H_

#include <memory>
#include <vector>

#include "core/status.h"
#include "gnn/heads.h"
#include "gnn/hetero_sage.h"
#include "sampler/neighbor_sampler.h"
#include "train/task.h"
#include "train/trainer.h"

namespace relgraph {

/// Two-tower GNN recommender for ranking predictive queries
/// ("PREDICT LIST(orders.product_id) ... AS RANKING OF products").
///
/// A shared HeteroSage encoder embeds both the source entities (e.g.
/// users, at their cutoff time) and the candidate targets (e.g. products);
/// optionally each side also carries a learnable per-node ID embedding
/// (the matrix-factorization component standard in production
/// recommenders) added to the GNN embedding. A LinkHead projects each side
/// and scores pairs by dot product. Training is BPR-style: for every
/// observed future (source, target) pair a random negative target is drawn
/// and the model maximizes sigmoid(score+ - score-).
class GnnRecommender {
 public:
  GnnRecommender(const HeteroGraph* graph, NodeTypeId source_type,
                 NodeTypeId target_type, const GnnConfig& gnn_config,
                 const SamplerOptions& sampler_options,
                 const TrainerConfig& trainer_config,
                 bool id_embeddings = true);

  /// Trains on ranking table rows indexed by `split.train` (each example
  /// contributes one BPR triple per future target), early-stopping on
  /// MAP@10 over `split.val`.
  Status Fit(const TrainingTable& table, const Split& split);

  /// For each example, ranks ALL target nodes by score (descending) and
  /// returns the top `k` target rows. Target embeddings are computed once
  /// per distinct cutoff in the batch.
  std::vector<std::vector<int64_t>> RankTargets(
      const TrainingTable& table, const std::vector<int64_t>& indices,
      int64_t k);

  /// MAP@k over the given examples against their `target_lists`.
  double EvaluateMapAtK(const TrainingTable& table,
                        const std::vector<int64_t>& indices, int64_t k);

  double best_val_metric() const { return best_val_metric_; }

  /// Persists all trained weights (towers, link head, ID embeddings).
  Status SaveWeights(const std::string& path) const;

  /// Restores weights saved by SaveWeights (same architecture required).
  Status LoadWeights(const std::string& path);

 private:
  std::vector<VarPtr> AllParameters() const;

  VarPtr EmbedNodes(NodeTypeId type, const std::vector<int64_t>& nodes,
                    const std::vector<Timestamp>& cutoffs, bool training);

  const HeteroGraph* graph_;
  NodeTypeId source_type_;
  NodeTypeId target_type_;
  TrainerConfig trainer_config_;
  NeighborSampler sampler_;
  std::unique_ptr<HeteroSageModel> model_;
  std::unique_ptr<LinkHead> head_;
  std::unique_ptr<Embedding> src_id_emb_;  // nullptr when disabled
  std::unique_ptr<Embedding> dst_id_emb_;
  Rng rng_;
  double best_val_metric_ = -1e30;
};

}  // namespace relgraph

#endif  // RELGRAPH_TRAIN_RECOMMENDER_H_

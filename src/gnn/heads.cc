#include "gnn/heads.h"

namespace relgraph {

ClassificationHead::ClassificationHead(int64_t in_dim, int64_t num_classes,
                                       Rng* rng)
    : mlp_(std::make_unique<Mlp>(
          std::vector<int64_t>{in_dim, in_dim / 2 > 4 ? in_dim / 2 : 4,
                               num_classes},
          rng)) {}

VarPtr ClassificationHead::Forward(const VarPtr& embeddings) const {
  return mlp_->Forward(embeddings);
}

VarPtr ClassificationHead::ForwardWithPrecision(const VarPtr& embeddings,
                                                Precision precision) const {
  return mlp_->ForwardWithPrecision(embeddings, precision);
}

std::vector<VarPtr> ClassificationHead::Parameters() const {
  return mlp_->Parameters();
}

ScalarHead::ScalarHead(int64_t in_dim, Rng* rng)
    : mlp_(std::make_unique<Mlp>(
          std::vector<int64_t>{in_dim, in_dim / 2 > 4 ? in_dim / 2 : 4, 1},
          rng)) {}

VarPtr ScalarHead::Forward(const VarPtr& embeddings) const {
  return mlp_->Forward(embeddings);
}

VarPtr ScalarHead::ForwardWithPrecision(const VarPtr& embeddings,
                                        Precision precision) const {
  return mlp_->ForwardWithPrecision(embeddings, precision);
}

std::vector<VarPtr> ScalarHead::Parameters() const {
  return mlp_->Parameters();
}

LinkHead::LinkHead(int64_t in_dim, int64_t proj_dim, Rng* rng)
    : src_proj_(std::make_unique<Linear>(in_dim, proj_dim, rng)),
      dst_proj_(std::make_unique<Linear>(in_dim, proj_dim, rng)) {}

VarPtr LinkHead::ProjectSource(const VarPtr& embeddings) const {
  return src_proj_->Forward(embeddings);
}

VarPtr LinkHead::ProjectTarget(const VarPtr& embeddings) const {
  return dst_proj_->Forward(embeddings);
}

VarPtr LinkHead::Score(const VarPtr& src_proj, const VarPtr& dst_proj) const {
  return ag::RowwiseDot(src_proj, dst_proj);
}

std::vector<VarPtr> LinkHead::Parameters() const {
  std::vector<VarPtr> ps = src_proj_->Parameters();
  for (const auto& p : dst_proj_->Parameters()) ps.push_back(p);
  return ps;
}

}  // namespace relgraph

# Empty dependencies file for pq_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table2_entity_regression"
  "../bench/bench_table2_entity_regression.pdb"
  "CMakeFiles/bench_table2_entity_regression.dir/bench_table2_entity_regression.cc.o"
  "CMakeFiles/bench_table2_entity_regression.dir/bench_table2_entity_regression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_entity_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ecommerce_churn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pq_shell.dir/pq_shell.cpp.o"
  "CMakeFiles/pq_shell.dir/pq_shell.cpp.o.d"
  "pq_shell"
  "pq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/fault_injection.h"

namespace relgraph {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAtomicWriteOpen:
      return "atomic_write_open";
    case FaultSite::kAtomicWriteShort:
      return "atomic_write_short";
    case FaultSite::kAtomicWriteRename:
      return "atomic_write_rename";
    case FaultSite::kCsvCellCorrupt:
      return "csv_cell_corrupt";
    case FaultSite::kNanLoss:
      return "nan_loss";
    case FaultSite::kNanGradient:
      return "nan_gradient";
    case FaultSite::kNumSites:
      break;
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(FaultSite site, int64_t skip, int64_t times) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  s.armed = true;
  s.skip = skip;
  s.times = times;
  s.hits = 0;
  s.fired = 0;
}

void FaultInjector::Disarm(FaultSite site) {
  sites_[static_cast<size_t>(site)].armed = false;
}

void FaultInjector::Reset() {
  for (auto& s : sites_) s = SiteState{};
}

bool FaultInjector::ShouldFire(FaultSite site) {
  SiteState& s = sites_[static_cast<size_t>(site)];
  if (!s.armed) return false;
  const int64_t hit = s.hits++;
  if (hit < s.skip) return false;
  if (s.times >= 0 && hit - s.skip >= s.times) return false;
  ++s.fired;
  return true;
}

int64_t FaultInjector::hits(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].hits;
}

int64_t FaultInjector::fired(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].fired;
}

}  // namespace relgraph

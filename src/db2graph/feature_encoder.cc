#include "db2graph/feature_encoder.h"

#include <algorithm>
#include <cmath>

#include "core/string_util.h"

namespace relgraph {

namespace {

bool ShouldSkip(const TableSchema& schema, const std::string& col,
                const EncodeOptions& options) {
  if (schema.primary_key() && *schema.primary_key() == col) return true;
  if (schema.IsForeignKey(col)) return true;
  if (schema.time_column() && *schema.time_column() == col) return true;
  for (const auto& s : options.skip_columns) {
    if (s == col) return true;
  }
  return false;
}

}  // namespace

Result<EncoderPlan> FitEncoderPlan(const Table& table,
                                   const EncodeOptions& options) {
  const int64_t n = table.num_rows();
  EncoderPlan out;
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (ShouldSkip(table.schema(), col.name(), options)) continue;
    ColumnEncoderPlan plan;
    plan.column = c;
    plan.add_null_flag = options.null_indicators && col.null_count() > 0;
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kFloat64:
      case DataType::kTimestamp: {
        plan.kind = ColumnEncoderPlan::kNumeric;
        double sum = 0.0, sum_sq = 0.0;
        int64_t count = 0;
        for (int64_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          const double v = col.Numeric(r);
          sum += v;
          sum_sq += v * v;
          ++count;
        }
        if (count > 0) {
          plan.mean = sum / static_cast<double>(count);
          const double var =
              sum_sq / static_cast<double>(count) - plan.mean * plan.mean;
          plan.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
        }
        plan.width = 1;
        break;
      }
      case DataType::kBool:
        plan.kind = ColumnEncoderPlan::kBool;
        plan.width = 1;
        break;
      case DataType::kString: {
        for (int64_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          plan.vocab.emplace(col.String(r),
                             static_cast<int64_t>(plan.vocab.size()));
          if (static_cast<int64_t>(plan.vocab.size()) >
              options.max_onehot) {
            break;
          }
        }
        if (static_cast<int64_t>(plan.vocab.size()) <= options.max_onehot) {
          // Re-scan to assign stable slots in sorted order.
          std::map<std::string, int64_t> sorted;
          for (int64_t r = 0; r < n; ++r) {
            if (!col.IsNull(r)) sorted.emplace(col.String(r), 0);
          }
          int64_t slot = 0;
          for (auto& [k, v] : sorted) v = slot++;
          plan.vocab = std::move(sorted);
          plan.kind = ColumnEncoderPlan::kOneHot;
          plan.width = static_cast<int64_t>(plan.vocab.size());
          if (plan.width == 0) plan.width = 1;  // all-null string column
        } else {
          plan.kind = ColumnEncoderPlan::kHashed;
          plan.width = options.hash_buckets;
        }
        break;
      }
    }
    out.columns.push_back(std::move(plan));
  }

  for (const auto& p : out.columns) {
    out.dim += p.width + (p.add_null_flag ? 1 : 0);
  }

  // Feature names (one per output dimension, in encode order).
  if (out.dim == 0) {
    out.feature_names.push_back("const:1");
    return out;
  }
  for (const auto& p : out.columns) {
    const Column& col = table.column(p.column);
    switch (p.kind) {
      case ColumnEncoderPlan::kNumeric:
        out.feature_names.push_back(col.name() + ":z");
        break;
      case ColumnEncoderPlan::kBool:
        out.feature_names.push_back(col.name() + ":b");
        break;
      case ColumnEncoderPlan::kOneHot: {
        std::vector<std::string> names(static_cast<size_t>(p.width),
                                       col.name() + "=?");
        for (const auto& [value, slot] : p.vocab) {
          names[static_cast<size_t>(slot)] = col.name() + "=" + value;
        }
        for (auto& nm : names) out.feature_names.push_back(nm);
        break;
      }
      case ColumnEncoderPlan::kHashed:
        for (int64_t b = 0; b < p.width; ++b) {
          out.feature_names.push_back(StrFormat(
              "%s#%lld", col.name().c_str(), static_cast<long long>(b)));
        }
        break;
    }
    if (p.add_null_flag) out.feature_names.push_back(col.name() + ":null");
  }
  return out;
}

Result<Tensor> EncodeRowsWithPlan(const Table& table, const EncoderPlan& plan,
                                  int64_t begin, int64_t end) {
  if (begin < 0 || end < begin || end > table.num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "encode range [%lld, %lld) out of bounds for table '%s' (%lld rows)",
        static_cast<long long>(begin), static_cast<long long>(end),
        table.name().c_str(), static_cast<long long>(table.num_rows())));
  }
  const int64_t n = end - begin;
  Tensor features = Tensor::Zeros(n, plan.output_dim());
  if (plan.dim == 0) {
    // Featureless table (e.g. pure link table): single constant column so
    // downstream encoders have an input.
    for (int64_t r = 0; r < n; ++r) features.at(r, 0) = 1.0f;
    return features;
  }

  int64_t offset = 0;
  for (const auto& p : plan.columns) {
    if (p.column >= table.num_columns()) {
      return Status::InvalidArgument(StrFormat(
          "encoder plan column %lld out of range for table '%s'",
          static_cast<long long>(p.column), table.name().c_str()));
    }
    const Column& col = table.column(p.column);
    switch (p.kind) {
      case ColumnEncoderPlan::kNumeric:
        for (int64_t r = 0; r < n; ++r) {
          const int64_t src = begin + r;
          const double v = col.IsNull(src) ? p.mean : col.Numeric(src);
          features.at(r, offset) =
              static_cast<float>((v - p.mean) / p.stddev);
        }
        break;
      case ColumnEncoderPlan::kBool:
        for (int64_t r = 0; r < n; ++r) {
          const int64_t src = begin + r;
          features.at(r, offset) =
              (!col.IsNull(src) && col.Bool(src)) ? 1.0f : 0.0f;
        }
        break;
      case ColumnEncoderPlan::kOneHot:
        for (int64_t r = 0; r < n; ++r) {
          const int64_t src = begin + r;
          if (col.IsNull(src)) continue;
          // Values outside the frozen vocabulary encode as all-zero.
          auto it = p.vocab.find(col.String(src));
          if (it != p.vocab.end()) {
            features.at(r, offset + it->second) = 1.0f;
          }
        }
        break;
      case ColumnEncoderPlan::kHashed:
        for (int64_t r = 0; r < n; ++r) {
          const int64_t src = begin + r;
          if (col.IsNull(src)) continue;
          const int64_t bucket = static_cast<int64_t>(
              Fnv1a64(col.String(src)) % static_cast<uint64_t>(p.width));
          features.at(r, offset + bucket) = 1.0f;
        }
        break;
    }
    offset += p.width;
    if (p.add_null_flag) {
      for (int64_t r = 0; r < n; ++r) {
        features.at(r, offset) = col.IsNull(begin + r) ? 1.0f : 0.0f;
      }
      ++offset;
    }
  }
  return features;
}

Result<EncodedTable> EncodeTableFeatures(const Table& table,
                                         const EncodeOptions& options) {
  RELGRAPH_ASSIGN_OR_RETURN(EncoderPlan plan,
                            FitEncoderPlan(table, options));
  RELGRAPH_ASSIGN_OR_RETURN(
      Tensor features,
      EncodeRowsWithPlan(table, plan, 0, table.num_rows()));
  EncodedTable out;
  out.features = std::move(features);
  out.feature_names = std::move(plan.feature_names);
  return out;
}

Status AppendFeatureBlock(EncodedTable* dst, const Tensor& block,
                          const std::vector<std::string>& block_names) {
  if (dst->features.rows() != block.rows()) {
    return Status::InvalidArgument(StrFormat(
        "feature block has %lld rows, table encoding has %lld",
        static_cast<long long>(block.rows()),
        static_cast<long long>(dst->features.rows())));
  }
  if (static_cast<int64_t>(block_names.size()) != block.cols()) {
    return Status::InvalidArgument(StrFormat(
        "feature block has %lld columns but %lld names",
        static_cast<long long>(block.cols()),
        static_cast<long long>(block_names.size())));
  }
  const int64_t rows = dst->features.rows();
  const int64_t old_cols = dst->features.cols();
  Tensor merged(rows, old_cols + block.cols());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < old_cols; ++c) {
      merged.at(r, c) = dst->features.at(r, c);
    }
    for (int64_t c = 0; c < block.cols(); ++c) {
      merged.at(r, old_cols + c) = block.at(r, c);
    }
  }
  dst->features = std::move(merged);
  dst->feature_names.insert(dst->feature_names.end(), block_names.begin(),
                            block_names.end());
  return Status::OK();
}

}  // namespace relgraph

#ifndef RELGRAPH_PQ_AST_H_
#define RELGRAPH_PQ_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/time.h"
#include "relational/value.h"

namespace relgraph {

/// Comparison operators usable in label thresholds and WHERE predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders an operator ("=", "!=", ...).
const char* CompareOpName(CompareOp op);

/// Evaluates `lhs op rhs` on doubles.
bool EvalCompare(CompareOp op, double lhs, double rhs);

/// A `table.column` (or bare `column`) reference.
struct ColumnRef {
  std::string table;   ///< empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// The aggregate at the heart of a predictive query:
/// `COUNT(orders)`, `SUM(orders.total)`, `LIST(orders.product_id)`,
/// `EXISTS(visits)`.
struct AggSpec {
  std::string func;      ///< COUNT/SUM/AVG/MIN/MAX/EXISTS/LIST (raw text)
  std::string table;     ///< aggregated (fact) table
  std::string column;    ///< value column; empty for COUNT/EXISTS
};

/// One conjunct of a WHERE clause: `col op literal`.
struct PredicateTerm {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// A history predicate restricting the prediction cohort by pre-cutoff
/// behaviour: `AGG(table[.col]) OVER LAST <window> <op> <number>`,
/// e.g. `COUNT(orders) OVER LAST 21 DAYS > 0` ("currently active users").
/// Evaluated per (entity, cutoff) pair during training-table construction.
struct HistoryTerm {
  AggSpec aggregate;
  Duration window = 0;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;
};

/// Declared task kind (the optional AS clause).
enum class DeclaredTask { kAuto, kClassification, kRegression, kRanking };

/// Parsed (but not yet schema-validated) predictive query.
struct ParsedQuery {
  AggSpec aggregate;

  /// Optional threshold turning the aggregate into a binary label,
  /// e.g. `COUNT(orders) = 0`.
  std::optional<CompareOp> threshold_op;
  double threshold_value = 0.0;

  /// BUCKET(...) boundaries (ascending): the aggregate value is mapped to
  /// class k = number of boundaries <= value, giving a multiclass task
  /// with bounds.size() + 1 classes. Empty when not a BUCKET query.
  std::vector<double> bucket_bounds;

  /// Label window: the aggregate is evaluated over
  /// [cutoff, cutoff + window).
  Duration window = 0;

  std::string entity_table;
  std::vector<PredicateTerm> where;       ///< conjunctive entity filter
  std::vector<HistoryTerm> where_history;  ///< conjunctive history filter

  DeclaredTask declared = DeclaredTask::kAuto;
  std::string ranking_target_table;  ///< AS RANKING OF <table>

  std::string model = "GNN";
  Options model_options;

  /// Optional SPLIT AT <t1>, <t2>: validation/test start times.
  std::optional<Timestamp> val_start;
  std::optional<Timestamp> test_start;

  /// Optional EVERY <duration>: cutoff stride (default: the window).
  std::optional<Duration> stride;

  /// Round-trippable textual rendering (diagnostics, tests).
  std::string ToString() const;
};

}  // namespace relgraph

#endif  // RELGRAPH_PQ_AST_H_

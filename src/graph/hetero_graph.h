#ifndef RELGRAPH_GRAPH_HETERO_GRAPH_H_
#define RELGRAPH_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/time.h"
#include "tensor/quantized.h"
#include "tensor/tensor.h"

namespace relgraph {

/// Identifies a node type (one per database table).
using NodeTypeId = int32_t;

/// Identifies a directed edge type (one per FK direction).
using EdgeTypeId = int32_t;

/// One immutable CSR segment of an edge type: a windowed adjacency slab
/// over source nodes [src_begin, src_end()). The bulk-loaded base is one
/// full-window segment; every streaming append adds a small tail segment
/// covering only the sources it touches. Segments are shared (by
/// shared_ptr) across graph epochs, so cloning a graph for the next delta
/// never copies base edges.
struct CsrSegment {
  int64_t src_begin = 0;           ///< first source node covered
  std::vector<int64_t> offsets;    ///< size (src_end - src_begin) + 1
  std::vector<int64_t> neighbors;  ///< dst node ids
  std::vector<Timestamp> times;    ///< edge timestamps

  int64_t src_end() const {
    return src_begin + static_cast<int64_t>(offsets.size()) - 1;
  }
  int64_t num_edges() const {
    return static_cast<int64_t>(neighbors.size());
  }
};

/// A node-delta summary of one incremental graph update, produced by the
/// streaming DB→graph layer and consumed by the serving engine for precise
/// cache invalidation. Vectors are indexed by NodeTypeId.
struct GraphDelta {
  /// Node count of each type BEFORE the delta: ids >= first_new_node[t]
  /// are new nodes (no pre-delta cache entry can reference them).
  std::vector<int64_t> first_new_node;

  /// Pre-existing nodes whose adjacency gained edges (source endpoints of
  /// appended edges, across every edge type), sorted and deduplicated per
  /// type. A cached computation is invalidated iff it read one of these.
  std::vector<std::vector<int64_t>> touched;

  /// Latest event timestamp carried by the delta's rows (kNoTimestamp if
  /// the delta is purely static).
  Timestamp max_event_time = kNoTimestamp;

  int64_t TotalTouched() const {
    int64_t total = 0;
    for (const auto& t : touched) total += static_cast<int64_t>(t.size());
    return total;
  }
};

/// A directed, typed, timestamped multigraph stored as segmented CSR — one
/// base segment plus zero or more append-tail segments per edge type — the
/// in-memory form of a relational database after DB→graph conversion.
///
/// Node ids are dense per node type: node `i` of type "orders" is row `i`
/// of the orders table. Every node carries a timestamp (kNoTimestamp for
/// static dimension rows) and every edge carries the timestamp of the fact
/// row that induced it, which is what makes leakage-free temporal neighbor
/// sampling possible.
///
/// Determinism contract: per-node neighbor order is base-segment rows
/// first, then appended rows in append order — exactly the row order a
/// from-scratch bulk build of the final table produces (the counting sort
/// in AddEdgeType is stable in row order, and appended rows always carry
/// larger row indices). CompactSegments merges in the same order, so a
/// compacted graph is bit-identical to the rebuilt one.
///
/// Copying a HeteroGraph is cheap (O(types + segments)): feature
/// matrices, node-time vectors and CSR segments are immutable and shared;
/// mutators on the copy replace pointers instead of touching shared
/// payloads. This is what makes copy-on-write graph epochs safe under
/// concurrent lock-free readers.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  /// Registers a node type; returns its id. Fails on duplicates.
  Result<NodeTypeId> AddNodeType(const std::string& name, int64_t num_nodes);

  /// Attaches a feature matrix (num_nodes × d) to a node type. Replaces
  /// any quantized representation (the type goes back to fp32 storage).
  Status SetNodeFeatures(NodeTypeId type, Tensor features);

  /// Converts a node type's fp32 feature matrix to symmetric per-row int8
  /// storage and drops the fp32 payload (the memory saving is the point:
  /// n+4 bytes per n-wide row instead of 4n). Opt-in, serving-oriented —
  /// readers must check features_quantized() and go through
  /// node_qfeatures(); feature_dim() stays correct either way. Fails with
  /// a precise error on non-finite features; no-op if the type is already
  /// quantized; InvalidArgument if it has no features.
  Status QuantizeNodeFeatures(NodeTypeId type);

  /// Attaches per-node timestamps (size num_nodes).
  Status SetNodeTimes(NodeTypeId type, std::vector<Timestamp> times);

  /// Registers a directed edge type and bulk-loads its edges as parallel
  /// arrays (src node id, dst node id, edge timestamp). Builds the base
  /// CSR segment by src (stable in input order per source).
  Result<EdgeTypeId> AddEdgeType(const std::string& name, NodeTypeId src_type,
                                 NodeTypeId dst_type,
                                 const std::vector<int64_t>& src,
                                 const std::vector<int64_t>& dst,
                                 const std::vector<Timestamp>& times);

  // --------------------------------------------------------- streaming

  /// Grows a node type by `count` nodes. `new_features` must carry one row
  /// per new node when the type has features (matching width; pass an
  /// empty tensor otherwise). `has_times` says whether the type is
  /// temporal: then `new_times` must carry one timestamp per new node.
  /// The previous feature matrix is copied once (O(num_nodes × dim)) into
  /// a fresh shared payload; other graph copies are unaffected.
  Status AppendNodes(NodeTypeId type, int64_t count,
                     const Tensor& new_features, bool has_times,
                     const std::vector<Timestamp>& new_times);

  /// Appends edges to an existing edge type as a new tail segment windowed
  /// over the touched sources. Endpoints must be in range; empty input is
  /// a no-op (no empty segments). Never rebuilds or mutates existing
  /// segments.
  Status AppendEdges(EdgeTypeId e, const std::vector<int64_t>& src,
                     const std::vector<int64_t>& dst,
                     const std::vector<Timestamp>& times);

  /// Merges every edge type holding more than `max_segments` segments into
  /// a single full-window base segment, preserving per-node neighbor order
  /// bit-for-bit (base first, then tails in append order). Returns the
  /// number of edge types compacted. The kCompact fault site fires before
  /// any mutation, so a poisoned compaction leaves the graph untouched
  /// (and still fully readable — compaction is a pure layout optimization).
  Result<int64_t> CompactSegments(int64_t max_segments);

  // -------------------------------------------------------------- lookup

  int32_t num_node_types() const {
    return static_cast<int32_t>(node_names_.size());
  }
  int32_t num_edge_types() const {
    return static_cast<int32_t>(edge_names_.size());
  }

  Result<NodeTypeId> FindNodeType(const std::string& name) const;
  Result<EdgeTypeId> FindEdgeType(const std::string& name) const;

  const std::string& node_type_name(NodeTypeId t) const {
    return node_names_[t];
  }
  const std::string& edge_type_name(EdgeTypeId e) const {
    return edge_names_[e];
  }

  int64_t num_nodes(NodeTypeId t) const { return num_nodes_[t]; }
  int64_t num_edges(EdgeTypeId e) const { return csr_[e].num_edges; }
  int64_t TotalNodes() const;
  int64_t TotalEdges() const;

  NodeTypeId edge_src_type(EdgeTypeId e) const { return edge_src_[e]; }
  NodeTypeId edge_dst_type(EdgeTypeId e) const { return edge_dst_[e]; }

  /// Feature matrix of a node type (empty tensor if unset — including
  /// when the type's features live in quantized storage; check
  /// features_quantized() first on serving paths).
  const Tensor& node_features(NodeTypeId t) const { return *features_[t]; }

  /// True when the type's features are stored int8-quantized.
  bool features_quantized(NodeTypeId t) const {
    return qfeatures_[t]->cols() > 0;
  }

  /// Quantized feature matrix of a node type (empty if not quantized).
  const QuantizedTensor& node_qfeatures(NodeTypeId t) const {
    return *qfeatures_[t];
  }

  /// Feature width of a node type (0 if unset), whichever storage holds it.
  int64_t feature_dim(NodeTypeId t) const {
    return features_quantized(t) ? qfeatures_[t]->cols()
                                 : features_[t]->cols();
  }

  /// Bytes resident for node features across all types (fp32 payloads at
  /// 4 bytes/element, quantized payloads at codes+scales) — the
  /// numerator of the serve-side bytes-per-node gauge.
  int64_t FeatureBytes() const;

  /// Timestamp of one node (kNoTimestamp when the type is static).
  Timestamp node_time(NodeTypeId t, int64_t node) const;

  /// Segment count of an edge type (1 after a bulk build or compaction;
  /// grows by one per non-empty append).
  int32_t num_segments(EdgeTypeId e) const {
    return static_cast<int32_t>(csr_[e].segments.size());
  }

  /// Direct view of one segment (for invariant checks and benchmarks).
  const CsrSegment& segment(EdgeTypeId e, int32_t i) const {
    return *csr_[e].segments[static_cast<size_t>(i)];
  }

  /// Neighborhood slice of `node` within segment `seg` of edge type `e`:
  /// `*dst_out`/`*time_out` point at `*count_out` parallel entries
  /// (count 0 when the node is outside the segment's window). Iterating
  /// segments 0..num_segments-1 yields the node's full neighbor list in
  /// canonical (bulk-rebuild) order.
  void SegmentNeighbors(EdgeTypeId e, int32_t seg, int64_t node,
                        const int64_t** dst_out, const Timestamp** time_out,
                        int64_t* count_out) const;

  /// Whole neighborhood of `node` as one contiguous span. Only valid for
  /// single-segment edge types (bulk-built or compacted graphs) — code on
  /// streaming paths must iterate SegmentNeighbors instead.
  void Neighbors(EdgeTypeId e, int64_t node, const int64_t** dst_out,
                 const Timestamp** time_out, int64_t* count_out) const;

  /// Degree of a node under an edge type (summed across segments).
  int64_t Degree(EdgeTypeId e, int64_t node) const;

  /// Summary line per type for logging/examples.
  std::string Describe() const;

 private:
  struct Csr {
    std::vector<std::shared_ptr<const CsrSegment>> segments;
    int64_t num_edges = 0;
  };

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeTypeId> node_index_;
  std::vector<int64_t> num_nodes_;
  // Shared immutable payloads: mutators publish replacements, never write
  // through these pointers.
  std::vector<std::shared_ptr<const Tensor>> features_;
  std::vector<std::shared_ptr<const QuantizedTensor>> qfeatures_;
  std::vector<std::shared_ptr<const std::vector<Timestamp>>> node_times_;

  std::vector<std::string> edge_names_;
  std::unordered_map<std::string, EdgeTypeId> edge_index_;
  std::vector<NodeTypeId> edge_src_;
  std::vector<NodeTypeId> edge_dst_;
  std::vector<Csr> csr_;
};

}  // namespace relgraph

#endif  // RELGRAPH_GRAPH_HETERO_GRAPH_H_

// Multi-threaded tests of the coalescing scheduler and the epoch-swapped
// snapshot shards (src/serve/coalescing_scheduler.h, snapshot_shards.h).
//
// The load-bearing claim: coalescing is INVISIBLE in the scores. N threads
// scoring overlapping Zipfian id sets through the scheduler must produce
// bit-identical doubles to serial solo calls — with caches on, off, and
// while AdvanceSnapshot swaps the world mid-flight (the response's
// snapshot_version says which world answered, and the scores must match
// that world's reference exactly). Runs under TSan in scripts/ci.sh
// (serve_mt lane).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deadline.h"
#include "core/rng.h"
#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "pq/engine.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "serve/coalescing_scheduler.h"
#include "serve/snapshot_shards.h"
#include "train/trainer.h"

namespace relgraph {
namespace {

constexpr const char* kQuery =
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users";
constexpr int64_t kUsers = 80;

// ------------------------------------------------------- ShardedLruCache

TEST(ShardedLruCacheTest, GetReturnsWhatPutStoredPerShard) {
  ShardedLruCache<int64_t, int> cache(/*capacity=*/64, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4u);
  const uint32_t s1 = EntityShard(1, cache.num_shards());
  const uint32_t s2 = EntityShard(2, cache.num_shards());
  int v = 0;
  EXPECT_FALSE(cache.Get(s1, 1, &v));
  cache.Put(s1, 1, 10);
  cache.Put(s2, 2, 20);
  ASSERT_TRUE(cache.Get(s1, 1, &v));
  EXPECT_EQ(v, 10);
  ASSERT_TRUE(cache.Get(s2, 2, &v));
  EXPECT_EQ(v, 20);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ShardedLruCacheTest, EntityShardIsPureAndInRange) {
  for (int64_t id = 0; id < 1000; ++id) {
    const uint32_t s = EntityShard(id, 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, EntityShard(id, 8));
  }
}

TEST(ShardedLruCacheTest, EpochSwapEmptiesButFoldsTallies) {
  ShardedLruCache<int64_t, int> cache(64, 4);
  const uint32_t s = EntityShard(7, cache.num_shards());
  cache.Put(s, 7, 70);
  int v = 0;
  ASSERT_TRUE(cache.Get(s, 7, &v));
  cache.EpochSwap();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Get(s, 7, &v));  // retired entries are gone
  EXPECT_EQ(cache.hits(), 1);         // tallies survive the swap
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.swaps(), 1);
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache<int64_t, int> cache(64, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
  ShardedLruCache<int64_t, int> one(64, 1);
  EXPECT_EQ(one.num_shards(), 1u);
}

// --------------------------------------------------------------- fixture

/// One trained checkpoint over database A plus a same-layout database B
/// with DIFFERENT data (so a wrong-snapshot answer is detectable), shared
/// across all tests in the suite.
class CoalesceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ECommerceConfig cfg;
    cfg.num_users = kUsers;
    cfg.num_products = 25;
    cfg.num_categories = 4;
    cfg.horizon_days = 150;
    db_a_ = new Database(MakeECommerceDb(cfg));
    cfg.seed = 43;  // different world, identical layout
    db_b_ = new Database(MakeECommerceDb(cfg));
    dbg_a_ = new DbGraph(BuildDbGraph(*db_a_).value());
    dbg_b_ = new DbGraph(BuildDbGraph(*db_b_).value());
    users_ = dbg_a_->graph.FindNodeType("users").value();

    auto rq = AnalyzeQuery(ParseQuery(kQuery).value(), *db_a_).value();
    auto cutoffs = MakeCutoffs(rq, *db_a_).value();
    auto table = BuildTrainingTable(rq, *db_a_, cutoffs).value();
    auto split = MakeSplit(rq, table, cutoffs).value();
    TrainerConfig tc;
    tc.epochs = 2;
    tc.seed = 3;
    GnnNodePredictor trainer(&dbg_a_->graph, users_,
                             TaskKind::kBinaryClassification, 2, Gnn(),
                             Sampler(), tc);
    ASSERT_TRUE(trainer.Fit(table, split).ok());
    ckpt_path_ = ::testing::TempDir() + "/serve_coalesce_test." +
                 std::to_string(getpid()) + ".ckpt";
    ASSERT_TRUE(trainer.SaveWeights(ckpt_path_).ok());

    ref_a_ = ReferenceScores(&dbg_a_->graph);
    ref_b_ = ReferenceScores(&dbg_b_->graph);
    bool differs = false;
    for (size_t i = 0; i < ref_a_.size(); ++i) {
      if (ref_a_[i] != ref_b_[i]) differs = true;
    }
    ASSERT_TRUE(differs);  // version checks need teeth
  }

  static void TearDownTestSuite() {
    std::remove(ckpt_path_.c_str());
    delete dbg_b_;
    delete dbg_a_;
    delete db_b_;
    delete db_a_;
    dbg_b_ = dbg_a_ = nullptr;
    db_b_ = db_a_ = nullptr;
  }

  static GnnConfig Gnn() {
    GnnConfig gnn;
    gnn.hidden_dim = 16;
    gnn.num_layers = 2;
    return gnn;
  }

  static SamplerOptions Sampler() {
    SamplerOptions sopts;
    sopts.fanouts = {4, 4};
    sopts.policy = SamplePolicy::kMostRecent;
    return sopts;
  }

  static Timestamp Now() {
    return std::max(db_a_->TimeRange().second, db_b_->TimeRange().second) + 1;
  }

  static std::unique_ptr<InferenceEngine> MakeEngine(
      const ServeOptions& serve = {}, const HeteroGraph* graph = nullptr) {
    auto engine = std::make_unique<InferenceEngine>(
        graph != nullptr ? graph : &dbg_a_->graph, users_,
        TaskKind::kBinaryClassification, 2, Gnn(), Sampler(), Now(), serve);
    EXPECT_TRUE(engine->LoadCheckpoint(ckpt_path_).ok());
    return engine;
  }

  /// Per-id solo scores over `graph`, computed cacheless: the ground
  /// truth every coalesced answer is compared against bit-for-bit.
  static std::vector<double> ReferenceScores(const HeteroGraph* graph) {
    ServeOptions off;
    off.enable_subgraph_cache = false;
    off.enable_embedding_cache = false;
    auto engine = MakeEngine(off, graph);
    std::vector<int64_t> ids(kUsers);
    for (int64_t i = 0; i < kUsers; ++i) ids[static_cast<size_t>(i)] = i;
    auto scores = engine->Score(ids);
    EXPECT_TRUE(scores.ok());
    return scores.value();
  }

  /// Zipfian request streams: `threads` clients, each issuing `requests`
  /// batches of `batch` skewed ids — heavy overlap across clients is the
  /// point (that is what coalescing dedups).
  static std::vector<std::vector<std::vector<int64_t>>> MakeStreams(
      int threads, int requests, int batch) {
    std::vector<std::vector<std::vector<int64_t>>> streams(
        static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      Rng rng(900 + static_cast<uint64_t>(t));
      for (int r = 0; r < requests; ++r) {
        std::vector<int64_t> ids(static_cast<size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          ids[static_cast<size_t>(i)] =
              rng.PowerLawIndex(static_cast<int>(kUsers), 1.1);
        }
        streams[static_cast<size_t>(t)].push_back(std::move(ids));
      }
    }
    return streams;
  }

  /// Runs every stream through `scheduler` on its own thread and checks
  /// each response bit-for-bit against the per-version reference (A for
  /// even snapshot versions, B for odd — the advance tests alternate).
  static void FloodAndVerify(
      CoalescingScheduler* scheduler,
      const std::vector<std::vector<std::vector<int64_t>>>& streams) {
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (const auto& stream : streams) {
      workers.emplace_back([&, stream_ptr = &stream] {
        for (const auto& ids : *stream_ptr) {
          ScoreRequest req;
          req.entity_ids = ids;
          auto result = scheduler->Score(req);
          if (!result.ok()) {
            ++failures;
            continue;
          }
          const ScoreResponse& resp = result.value();
          const std::vector<double>& ref =
              resp.snapshot_version % 2 == 0 ? ref_a_ : ref_b_;
          if (resp.scores.size() != ids.size()) {
            ++failures;
            continue;
          }
          for (size_t i = 0; i < ids.size(); ++i) {
            if (resp.scores[i] != ref[static_cast<size_t>(ids[i])]) {
              ++failures;
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
  }

  static Database* db_a_;
  static Database* db_b_;
  static DbGraph* dbg_a_;
  static DbGraph* dbg_b_;
  static NodeTypeId users_;
  static std::string ckpt_path_;
  static std::vector<double> ref_a_;
  static std::vector<double> ref_b_;
};

Database* CoalesceTest::db_a_ = nullptr;
Database* CoalesceTest::db_b_ = nullptr;
DbGraph* CoalesceTest::dbg_a_ = nullptr;
DbGraph* CoalesceTest::dbg_b_ = nullptr;
NodeTypeId CoalesceTest::users_ = 0;
std::string CoalesceTest::ckpt_path_;
std::vector<double> CoalesceTest::ref_a_;
std::vector<double> CoalesceTest::ref_b_;

// ----------------------------------------------------------- bit-identity

TEST_F(CoalesceTest, SoloAndCoalescedBitIdenticalSerially) {
  auto engine = MakeEngine();
  CoalesceOptions copts;
  copts.wait_window_ms = 0.0;  // serial use: every call its own batch
  CoalescingScheduler scheduler(engine.get(), copts);

  const std::vector<int64_t> ids = {5, 17, 5, 3, 42, 17, 8, 0, 61, 5};
  ScoreRequest req;
  req.entity_ids = ids;
  auto result = scheduler.Score(req);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().scores.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(result.value().scores[i], ref_a_[static_cast<size_t>(ids[i])]);
    EXPECT_EQ(result.value().row_flags[i], kRowResolved);
  }
  EXPECT_EQ(result.value().rows_resolved, static_cast<int64_t>(ids.size()));

  // Empty requests flow through like solo ones.
  auto empty = scheduler.Score(ScoreRequest{});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().scores.empty());

  const CoalesceStats s = scheduler.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.coalesced_requests, 0);
  // In-request duplicates dedup too: 10 submitted, 7 unique executed.
  EXPECT_EQ(s.rows_submitted, 10);
  EXPECT_EQ(s.rows_executed, 7);
  EXPECT_EQ(s.dedup_rows, 3);
}

TEST_F(CoalesceTest, ConcurrentZipfianMatchesSoloExactly) {
  auto engine = MakeEngine();
  CoalesceOptions copts;
  copts.wait_window_ms = 0.5;
  CoalescingScheduler scheduler(engine.get(), copts);
  FloodAndVerify(&scheduler, MakeStreams(4, 25, 12));
  const CoalesceStats s = scheduler.stats();
  EXPECT_EQ(s.requests, 100);
  EXPECT_GT(s.dedup_rows, 0);  // Zipfian overlap must dedup something
  EXPECT_EQ(s.rows_submitted, 100 * 12);
}

TEST_F(CoalesceTest, ConcurrentCachesOffBitIdentical) {
  ServeOptions opts;
  opts.enable_subgraph_cache = false;
  opts.enable_embedding_cache = false;
  auto engine = MakeEngine(opts);
  CoalesceOptions copts;
  copts.wait_window_ms = 0.5;
  CoalescingScheduler scheduler(engine.get(), copts);
  FloodAndVerify(&scheduler, MakeStreams(4, 15, 8));
}

TEST_F(CoalesceTest, CoalesceUnderMidFlightAdvance) {
  auto engine = MakeEngine();
  CoalesceOptions copts;
  copts.wait_window_ms = 0.3;
  CoalescingScheduler scheduler(engine.get(), copts);

  std::atomic<bool> stop{false};
  std::thread advancer([&] {
    // Alternate worlds while scorers run: even versions = A, odd = B.
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed) && flips < 200) {
      const HeteroGraph* next =
          (engine->snapshot_version() % 2 == 0) ? &dbg_b_->graph
                                                : &dbg_a_->graph;
      ASSERT_TRUE(engine->AdvanceSnapshot(next, Now()).ok());
      ++flips;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  FloodAndVerify(&scheduler, MakeStreams(4, 20, 8));
  stop.store(true, std::memory_order_relaxed);
  advancer.join();
  EXPECT_GT(engine->stats().shard_swaps, 0);
}

// -------------------------------------------------- batch formation rules

TEST_F(CoalesceTest, TwoRequestsShareOneBatchAndDedupOverlap) {
  auto engine = MakeEngine();
  CoalesceOptions copts;
  copts.wait_window_ms = 10000.0;  // gather until capacity closes the batch
  copts.max_batch_rows = 4;        // == |{1,2,3} ∪ {2,3,4}|
  CoalescingScheduler scheduler(engine.get(), copts);

  std::vector<double> scores_a, scores_b;
  std::thread ta([&] {
    ScoreRequest req;
    req.entity_ids = {1, 2, 3};
    auto r = scheduler.Score(req);
    ASSERT_TRUE(r.ok());
    scores_a = r.value().scores;
  });
  std::thread tb([&] {
    ScoreRequest req;
    req.entity_ids = {2, 3, 4};
    auto r = scheduler.Score(req);
    ASSERT_TRUE(r.ok());
    scores_b = r.value().scores;
  });
  ta.join();
  tb.join();

  ASSERT_EQ(scores_a.size(), 3u);
  ASSERT_EQ(scores_b.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scores_a[static_cast<size_t>(i)],
              ref_a_[static_cast<size_t>(i + 1)]);
    EXPECT_EQ(scores_b[static_cast<size_t>(i)],
              ref_a_[static_cast<size_t>(i + 2)]);
  }
  const CoalesceStats s = scheduler.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.batches, 1);             // ONE engine execution for both
  EXPECT_EQ(s.coalesced_requests, 2);  // both rode the shared batch
  EXPECT_EQ(s.rows_executed, 4);       // {1,2,3,4}
  EXPECT_EQ(s.dedup_rows, 2);          // {2,3} sampled/forwarded once
  EXPECT_EQ(engine->stats().coalesced_batches, 1);
  EXPECT_EQ(engine->stats().coalesced_rows, 4);
}

TEST_F(CoalesceTest, DeadlineMarginFlushesWithoutWaiting) {
  FakeClock clock;
  ServeOptions opts;
  opts.clock = &clock;
  auto engine = MakeEngine(opts);
  CoalesceOptions copts;
  copts.wait_window_ms = 10000.0;  // would hang the test if waited out
  copts.deadline_margin_ms = 1.0;
  CoalescingScheduler scheduler(engine.get(), copts);

  ScoreRequest req;
  req.entity_ids = {5, 6};
  req.deadline = Deadline::AfterMillis(0.5, &clock);  // slack < margin
  const auto start = std::chrono::steady_clock::now();
  auto result = scheduler.Score(req);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().scores[0], ref_a_[5]);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  EXPECT_EQ(scheduler.stats().near_deadline_flushes, 1);
}

TEST_F(CoalesceTest, ExpiredAtEnqueueRefusedBeforeJoining) {
  FakeClock clock;
  ServeOptions opts;
  opts.clock = &clock;
  auto engine = MakeEngine(opts);
  CoalescingScheduler scheduler(engine.get());

  ScoreRequest req;
  req.entity_ids = {1};
  req.deadline = Deadline::AfterMillis(1.0, &clock);
  clock.AdvanceMillis(2.0);
  auto result = scheduler.Score(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scheduler.stats().batches, 0);  // never reached the engine
}

// ------------------------------------------------------ invalid-id policy

TEST_F(CoalesceTest, InvalidIdRejectIsolatesTheOffendingMember) {
  auto engine = MakeEngine();  // default policy: kReject
  CoalesceOptions copts;
  copts.wait_window_ms = 10000.0;
  copts.max_batch_rows = 4;  // {bad,1} + {2,3} close the batch
  CoalescingScheduler scheduler(engine.get(), copts);

  Result<ScoreResponse> result_a = Status::Internal("unset");
  Result<ScoreResponse> result_b = Status::Internal("unset");
  std::thread ta([&] {
    ScoreRequest req;
    req.entity_ids = {kUsers + 100, 1};  // out of range
    result_a = scheduler.Score(req);
  });
  std::thread tb([&] {
    ScoreRequest req;
    req.entity_ids = {2, 3};
    result_b = scheduler.Score(req);
  });
  ta.join();
  tb.join();

  // The offender is rejected per the engine's policy; its batch-mate is
  // served normally from the same shared execution.
  ASSERT_FALSE(result_a.ok());
  EXPECT_EQ(result_a.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_b.value().scores[0], ref_a_[2]);
  EXPECT_EQ(result_b.value().scores[1], ref_a_[3]);
  EXPECT_EQ(scheduler.stats().batches, 1);
}

TEST_F(CoalesceTest, InvalidIdNanRowPolicyNansOnlyTheBadRow) {
  ServeOptions opts;
  opts.invalid_id_policy = InvalidIdPolicy::kNanRow;
  auto engine = MakeEngine(opts);
  CoalescingScheduler scheduler(engine.get());

  ScoreRequest req;
  req.entity_ids = {kUsers + 5, 7};
  auto result = scheduler.Score(req);
  ASSERT_TRUE(result.ok());
  const ScoreResponse& resp = result.value();
  EXPECT_TRUE(std::isnan(resp.scores[0]));
  EXPECT_EQ(resp.row_flags[0], kRowInvalid);
  EXPECT_EQ(resp.scores[1], ref_a_[7]);
  EXPECT_EQ(resp.row_flags[1], kRowResolved);
  EXPECT_EQ(resp.rows_invalid, 1);
  EXPECT_EQ(resp.rows_resolved, 1);
  EXPECT_FALSE(resp.degraded);  // invalid ids are caller errors, not decay
}

// ------------------------------------------------- shard swaps / metadata

TEST_F(CoalesceTest, ShardSwapKeepsServingUnderDirectConcurrentScores) {
  ServeOptions opts;
  opts.cache_shards = 4;
  auto engine = MakeEngine(opts);

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 3; ++t) {
    scorers.emplace_back([&, t] {
      Rng rng(77 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<int64_t> ids(6);
        for (auto& id : ids) {
          id = rng.PowerLawIndex(static_cast<int>(kUsers), 1.1);
        }
        ScoreRequest req;
        req.entity_ids = ids;
        auto result = engine->ScoreWithOptions(req);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        const ScoreResponse& resp = result.value();
        const std::vector<double>& ref =
            resp.snapshot_version % 2 == 0 ? ref_a_ : ref_b_;
        for (size_t i = 0; i < ids.size(); ++i) {
          if (resp.scores[i] != ref[static_cast<size_t>(ids[i])]) {
            ++failures;
          }
        }
      }
    });
  }
  for (int i = 0; i < 8; ++i) {
    const HeteroGraph* next = (engine->snapshot_version() % 2 == 0)
                                  ? &dbg_b_->graph
                                  : &dbg_a_->graph;
    ASSERT_TRUE(engine->AdvanceSnapshot(next, Now()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& s : scorers) s.join();

  EXPECT_EQ(failures.load(), 0);
  // 8 advances + 1 from LoadCheckpoint (new weights retire old embeddings).
  EXPECT_EQ(engine->stats().shard_swaps, 9);
  const ServeHealth h = engine->HealthStatus();
  EXPECT_EQ(h.cache_shards, 4);
  EXPECT_EQ(h.shard_swaps, 9);
  EXPECT_EQ(h.snapshot_version, 8);
}

TEST_F(CoalesceTest, RowFlagsExposedOnDirectEngineResponses) {
  ServeOptions opts;
  opts.invalid_id_policy = InvalidIdPolicy::kNanRow;
  auto engine = MakeEngine(opts);
  ScoreRequest req;
  req.entity_ids = {5, kUsers + 9};
  auto result = engine->ScoreWithOptions(req);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().row_flags.size(), 2u);
  EXPECT_EQ(result.value().row_flags[0], kRowResolved);
  EXPECT_EQ(result.value().row_flags[1], kRowInvalid);
}

TEST_F(CoalesceTest, HealthSurfacesCoalesceAndShardInfo) {
  auto engine = MakeEngine();
  CoalesceOptions copts;
  copts.wait_window_ms = 0.0;
  CoalescingScheduler scheduler(engine.get(), copts);
  ScoreRequest req;
  req.entity_ids = {1, 2, 3};
  ASSERT_TRUE(scheduler.Score(req).ok());

  const ServeHealth h = engine->HealthStatus();
  EXPECT_EQ(h.cache_shards, 8);  // default cache_shards
  EXPECT_EQ(h.coalesced_batches, 1);
  EXPECT_EQ(h.coalesced_rows, 3);
  const ServeStats s = engine->stats();
  EXPECT_EQ(s.coalesced_batches, 1);
  EXPECT_EQ(s.coalesced_rows, 3);
}

}  // namespace
}  // namespace relgraph

file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_churn.dir/ecommerce_churn.cpp.o"
  "CMakeFiles/ecommerce_churn.dir/ecommerce_churn.cpp.o.d"
  "ecommerce_churn"
  "ecommerce_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Tests of the online inference engine (src/serve/): LRU cache semantics,
// bit-identical scores across every cache/micro-batch configuration,
// warm-up, snapshot advancement, checkpoint validation, query compilation
// for serving, and concurrent request correctness.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/ecommerce.h"
#include "db2graph/graph_builder.h"
#include "pq/engine.h"
#include "pq/label_builder.h"
#include "pq/parser.h"
#include "serve/inference_engine.h"
#include "serve/lru_cache.h"
#include "train/trainer.h"

namespace relgraph {
namespace {

// ---------------------------------------------------------------- LruCache

TEST(LruCacheTest, GetReturnsWhatPutStored) {
  LruCache<int64_t, int> cache(4);
  int v = 0;
  EXPECT_FALSE(cache.Get(1, &v));
  cache.Put(1, 10);
  ASSERT_TRUE(cache.Get(1, &v));
  EXPECT_EQ(v, 10);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int64_t, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  int v = 0;
  ASSERT_TRUE(cache.Get(1, &v));  // refresh 1: now 2 is the LRU entry
  cache.Put(3, 30);               // evicts 2
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Get(2, &v));
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_TRUE(cache.Get(3, &v));
  EXPECT_EQ(cache.size(), 2);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int64_t, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh + overwrite, no eviction
  EXPECT_EQ(cache.evictions(), 0);
  cache.Put(3, 30);  // now 2 is the LRU entry
  int v = 0;
  EXPECT_FALSE(cache.Get(2, &v));
  ASSERT_TRUE(cache.Get(1, &v));
  EXPECT_EQ(v, 11);
}

TEST(LruCacheTest, ClearEmptiesButKeepsTallies) {
  LruCache<int64_t, int> cache(4);
  cache.Put(1, 10);
  int v = 0;
  ASSERT_TRUE(cache.Get(1, &v));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Get(1, &v));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

// ----------------------------------------------------------- ServingFixture

constexpr const char* kQuery =
    "PREDICT COUNT(orders) = 0 OVER NEXT 28 DAYS FOR EACH users";

/// Trains a small churn model ONCE and shares the checkpoint, database and
/// graph across all serving tests (training dominates the suite runtime).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ECommerceConfig cfg;
    cfg.num_users = 80;
    cfg.num_products = 25;
    cfg.num_categories = 4;
    cfg.horizon_days = 150;
    db_ = new Database(MakeECommerceDb(cfg));
    dbg_ = new DbGraph(BuildDbGraph(*db_).value());
    // An independent build of the same database: a fresher snapshot with
    // the identical layout, for AdvanceSnapshot tests.
    dbg2_ = new DbGraph(BuildDbGraph(*db_).value());
    users_ = dbg_->graph.FindNodeType("users").value();

    auto rq = AnalyzeQuery(ParseQuery(kQuery).value(), *db_).value();
    auto cutoffs = MakeCutoffs(rq, *db_).value();
    auto table = BuildTrainingTable(rq, *db_, cutoffs).value();
    auto split = MakeSplit(rq, table, cutoffs).value();

    TrainerConfig tc;
    tc.epochs = 2;
    tc.seed = 3;
    GnnNodePredictor trainer(&dbg_->graph, users_,
                             TaskKind::kBinaryClassification, 2, Gnn(),
                             Sampler(), tc);
    ASSERT_TRUE(trainer.Fit(table, split).ok());
    // Pid-unique path: ctest runs each TEST of this binary as its own
    // process, possibly in parallel — a shared path would race.
    ckpt_path_ = ::testing::TempDir() + "/serve_test." +
                 std::to_string(getpid()) + ".ckpt";
    ASSERT_TRUE(trainer.SaveWeights(ckpt_path_).ok());
  }

  static void TearDownTestSuite() {
    std::remove(ckpt_path_.c_str());
    delete dbg2_;
    delete dbg_;
    delete db_;
    dbg2_ = dbg_ = nullptr;
    db_ = nullptr;
  }

  static GnnConfig Gnn() {
    GnnConfig gnn;
    gnn.hidden_dim = 16;
    gnn.num_layers = 2;
    return gnn;
  }

  static SamplerOptions Sampler() {
    SamplerOptions sopts;
    sopts.fanouts = {4, 4};
    sopts.policy = SamplePolicy::kMostRecent;
    return sopts;
  }

  static Timestamp Now() { return db_->TimeRange().second + 1; }

  /// A loaded engine over the shared checkpoint.
  static std::unique_ptr<InferenceEngine> MakeEngine(
      const ServeOptions& serve = {}) {
    auto engine = std::make_unique<InferenceEngine>(
        &dbg_->graph, users_, TaskKind::kBinaryClassification, 2, Gnn(),
        Sampler(), Now(), serve);
    EXPECT_TRUE(engine->LoadCheckpoint(ckpt_path_).ok());
    return engine;
  }

  static Database* db_;
  static DbGraph* dbg_;
  static DbGraph* dbg2_;
  static NodeTypeId users_;
  static std::string ckpt_path_;
};

Database* ServeTest::db_ = nullptr;
DbGraph* ServeTest::dbg_ = nullptr;
DbGraph* ServeTest::dbg2_ = nullptr;
NodeTypeId ServeTest::users_ = 0;
std::string ServeTest::ckpt_path_;

// A request mixing repeats and scattered ids, larger than one micro-batch
// at size 7.
std::vector<int64_t> MixedIds() {
  return {5, 17, 5, 3, 42, 17, 8, 0, 3, 61, 42, 79, 1, 5};
}

// ----------------------------------------------------------- basic contract

TEST_F(ServeTest, ScoreBeforeLoadFails) {
  InferenceEngine engine(&dbg_->graph, users_,
                         TaskKind::kBinaryClassification, 2, Gnn(), Sampler(),
                         Now());
  EXPECT_FALSE(engine.loaded());
  EXPECT_FALSE(engine.Score({0}).ok());
}

TEST_F(ServeTest, LoadCheckpointRejectsMissingAndMismatched) {
  InferenceEngine engine(&dbg_->graph, users_,
                         TaskKind::kBinaryClassification, 2, Gnn(), Sampler(),
                         Now());
  EXPECT_FALSE(engine.LoadCheckpoint("/nonexistent/nope.ckpt").ok());

  GnnConfig wrong = Gnn();
  wrong.hidden_dim = 24;
  InferenceEngine mismatched(&dbg_->graph, users_,
                             TaskKind::kBinaryClassification, 2, wrong,
                             Sampler(), Now());
  EXPECT_FALSE(mismatched.LoadCheckpoint(ckpt_path_).ok());
}

TEST_F(ServeTest, RejectsOutOfRangeIds) {
  auto engine = MakeEngine();
  EXPECT_FALSE(engine->Score({-1}).ok());
  EXPECT_FALSE(engine->Score({dbg_->graph.num_nodes(users_)}).ok());
  auto empty = engine->Score({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(ServeTest, ScoresAreProbabilities) {
  auto engine = MakeEngine();
  auto scores = engine->Score(MixedIds());
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores.value().size(), MixedIds().size());
  for (double s : scores.value()) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
  // Repeated ids in one request get identical scores.
  EXPECT_EQ(scores.value()[0], scores.value()[2]);   // id 5
  EXPECT_EQ(scores.value()[1], scores.value()[5]);   // id 17
  EXPECT_EQ(scores.value()[3], scores.value()[8]);   // id 3
}

// ----------------------------------------------------- bit-identity matrix

TEST_F(ServeTest, ScoresBitIdenticalAcrossCacheAndBatchConfigs) {
  auto reference = MakeEngine();  // defaults: both caches, micro-batch 32
  const auto expected = reference->Score(MixedIds());
  ASSERT_TRUE(expected.ok());

  std::vector<ServeOptions> configs;
  {
    ServeOptions off;
    off.enable_subgraph_cache = false;
    off.enable_embedding_cache = false;
    configs.push_back(off);
    ServeOptions subgraph_only = off;
    subgraph_only.enable_subgraph_cache = true;
    configs.push_back(subgraph_only);
    ServeOptions embedding_only = off;
    embedding_only.enable_embedding_cache = true;
    configs.push_back(embedding_only);
    ServeOptions tiny_batches;
    tiny_batches.micro_batch_size = 1;
    configs.push_back(tiny_batches);
    ServeOptions odd_batches;
    odd_batches.micro_batch_size = 7;
    configs.push_back(odd_batches);
  }
  for (size_t c = 0; c < configs.size(); ++c) {
    auto engine = MakeEngine(configs[c]);
    auto got = engine->Score(MixedIds());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), expected.value().size());
    for (size_t i = 0; i < expected.value().size(); ++i) {
      // Exact double equality: caching and batching must not perturb a
      // single bit of any score.
      EXPECT_EQ(got.value()[i], expected.value()[i])
          << "config " << c << " id index " << i;
    }
  }
}

TEST_F(ServeTest, WarmRepeatIsBitIdenticalAndHitsCaches) {
  auto engine = MakeEngine();
  const auto cold = engine->Score(MixedIds());
  ASSERT_TRUE(cold.ok());
  const ServeStats after_cold = engine->stats();
  EXPECT_GT(after_cold.subgraph_misses, 0);
  EXPECT_GT(after_cold.embedding_misses, 0);

  const auto warm = engine->Score(MixedIds());
  ASSERT_TRUE(warm.ok());
  for (size_t i = 0; i < cold.value().size(); ++i) {
    EXPECT_EQ(warm.value()[i], cold.value()[i]);
  }
  const ServeStats after_warm = engine->stats();
  // The repeat is served entirely from the embedding cache.
  EXPECT_GT(after_warm.embedding_hits, after_cold.embedding_hits);
  EXPECT_EQ(after_warm.embedding_misses, after_cold.embedding_misses);
  EXPECT_EQ(after_warm.requests, 2);
  EXPECT_EQ(after_warm.entities_scored,
            2 * static_cast<int64_t>(MixedIds().size()));
}

TEST_F(ServeTest, SingleIdScoresMatchBatchedScores) {
  auto batch_engine = MakeEngine();
  const std::vector<int64_t> ids = {0, 7, 19, 33, 54, 79};
  const auto batched = batch_engine->Score(ids);
  ASSERT_TRUE(batched.ok());

  ServeOptions cold;
  cold.enable_subgraph_cache = false;
  cold.enable_embedding_cache = false;
  auto single_engine = MakeEngine(cold);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto one = single_engine->Score({ids[i]});
    ASSERT_TRUE(one.ok());
    ASSERT_EQ(one.value().size(), 1u);
    EXPECT_EQ(one.value()[0], batched.value()[i]) << "id " << ids[i];
  }
}

TEST_F(ServeTest, TinyCachesEvictButStayCorrect) {
  ServeOptions tiny;
  tiny.subgraph_cache_capacity = 2;
  tiny.embedding_cache_capacity = 2;
  auto engine = MakeEngine(tiny);
  ServeOptions off;
  off.enable_subgraph_cache = false;
  off.enable_embedding_cache = false;
  auto reference = MakeEngine(off);

  // Two passes over more ids than fit: constant eviction churn, yet every
  // score stays bit-identical to the cacheless engine.
  const std::vector<int64_t> ids = {0, 11, 22, 33, 44, 55, 66, 77};
  for (int pass = 0; pass < 2; ++pass) {
    auto got = engine->Score(ids);
    auto want = reference->Score(ids);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(got.value()[i], want.value()[i]) << "pass " << pass;
    }
  }
}

// ------------------------------------------------------------------ warm-up

TEST_F(ServeTest, WarmUpMakesFirstRequestHit) {
  auto engine = MakeEngine();
  const std::vector<int64_t> hot = {2, 4, 6, 8};
  ASSERT_TRUE(engine->WarmUp(hot).ok());
  const ServeStats warmed = engine->stats();
  EXPECT_EQ(warmed.requests, 0);  // warm-up is not a served request

  auto scores = engine->Score(hot);
  ASSERT_TRUE(scores.ok());
  const ServeStats after = engine->stats();
  EXPECT_EQ(after.embedding_hits - warmed.embedding_hits,
            static_cast<int64_t>(hot.size()));
  EXPECT_EQ(after.embedding_misses, warmed.embedding_misses);
}

// ---------------------------------------------------------------- snapshots

TEST_F(ServeTest, AdvanceSnapshotBumpsVersionAndInvalidatesEmbeddings) {
  auto engine = MakeEngine();
  const auto before = engine->Score(MixedIds());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(engine->snapshot_version(), 0);

  // Advance onto an independently built graph of the same database: same
  // layout, same data, so scores must not change — but the engine cannot
  // know that, so cached embeddings are dropped and recomputed.
  const ServeStats pre = engine->stats();
  ASSERT_TRUE(engine->AdvanceSnapshot(&dbg2_->graph, Now()).ok());
  EXPECT_EQ(engine->snapshot_version(), 1);

  const auto after = engine->Score(MixedIds());
  ASSERT_TRUE(after.ok());
  const ServeStats post = engine->stats();
  // Fresh misses on both caches: embeddings were cleared, and the old
  // subgraph entries are dead keys under the new snapshot version.
  EXPECT_GT(post.embedding_misses, pre.embedding_misses);
  EXPECT_GT(post.subgraph_misses, pre.subgraph_misses);
  for (size_t i = 0; i < before.value().size(); ++i) {
    EXPECT_EQ(after.value()[i], before.value()[i]);
  }
}

TEST_F(ServeTest, AdvanceSnapshotRejectsMismatchedLayout) {
  auto engine = MakeEngine();
  HeteroGraph other;
  ASSERT_TRUE(other.AddNodeType("users", 3).ok());
  ASSERT_TRUE(other.SetNodeFeatures(0, Tensor::Ones(3, 2)).ok());
  EXPECT_FALSE(engine->AdvanceSnapshot(&other, 1).ok());
  EXPECT_FALSE(engine->AdvanceSnapshot(nullptr, 1).ok());
  EXPECT_EQ(engine->snapshot_version(), 0);
}

// ----------------------------------------------------------- query compile

TEST_F(ServeTest, CompileForServingResolvesThePlan) {
  PredictiveQueryEngine pq(db_);
  auto plan = pq.CompileForServing(
      std::string(kQuery) +
      " USING GNN WITH hidden=16, layers=2, fanout=4, policy=recent, seed=3");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().kind, TaskKind::kBinaryClassification);
  EXPECT_EQ(plan.value().entity_table, "users");
  ASSERT_NE(plan.value().graph, nullptr);
  EXPECT_EQ(plan.value().gnn.hidden_dim, 16);
  EXPECT_EQ(plan.value().sampler.fanouts, (std::vector<int64_t>{4, 4}));
  EXPECT_EQ(plan.value().sampler.policy, SamplePolicy::kMostRecent);
  EXPECT_EQ(plan.value().seed, 3u);
  EXPECT_EQ(plan.value().now_cutoff, db_->TimeRange().second + 1);

  // Ranking queries and non-GNN models are not servable through this path.
  EXPECT_FALSE(pq.CompileForServing(
                     "PREDICT LIST(orders.product_id) OVER NEXT 28 DAYS "
                     "FOR EACH users USING POPULAR")
                   .ok());
  EXPECT_FALSE(
      pq.CompileForServing(std::string(kQuery) + " USING GBDT").ok());
}

TEST_F(ServeTest, PlanConstructedEngineServesTheCheckpoint) {
  PredictiveQueryEngine pq(db_);
  auto plan = pq.CompileForServing(
      std::string(kQuery) +
      " USING GNN WITH hidden=16, layers=2, fanout=4, policy=recent, seed=3");
  ASSERT_TRUE(plan.ok());
  InferenceEngine engine(plan.value());
  ASSERT_TRUE(engine.LoadCheckpoint(ckpt_path_).ok());
  auto scores = engine.Score({1, 2, 3});
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores.value().size(), 3u);
  for (double s : scores.value()) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

// -------------------------------------------------------------- concurrency

TEST_F(ServeTest, ConcurrentScoresMatchSerialReference) {
  ServeOptions off;
  off.enable_subgraph_cache = false;
  off.enable_embedding_cache = false;
  auto reference = MakeEngine(off);

  const int kThreads = 4;
  const int kIters = 5;
  // Per-thread id lists with heavy overlap so threads race on the same
  // cache entries.
  std::vector<std::vector<int64_t>> requests;
  for (int t = 0; t < kThreads; ++t) {
    requests.push_back({static_cast<int64_t>(t), 10, 20, 30,
                        static_cast<int64_t>(40 + t), 50});
  }
  std::vector<std::vector<double>> expected;
  for (const auto& req : requests) {
    auto want = reference->Score(req);
    ASSERT_TRUE(want.ok());
    expected.push_back(want.value());
  }

  auto engine = MakeEngine();
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        auto got = engine->Score(requests[t]);
        if (!got.ok() || got.value() != expected[t]) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace relgraph

#ifndef RELGRAPH_GNN_HEADS_H_
#define RELGRAPH_GNN_HEADS_H_

#include <memory>
#include <vector>

#include "tensor/nn.h"

namespace relgraph {

/// MLP head turning entity embeddings into K-class logits.
class ClassificationHead : public Module {
 public:
  ClassificationHead(int64_t in_dim, int64_t num_classes, Rng* rng);

  /// [n × in_dim] embeddings -> [n × num_classes] logits.
  VarPtr Forward(const VarPtr& embeddings) const;

  /// Inference-only forward with the head MLP at the given precision.
  VarPtr ForwardWithPrecision(const VarPtr& embeddings,
                              Precision precision) const;

  std::vector<VarPtr> Parameters() const override;

  int64_t num_classes() const { return mlp_->out_features(); }

 private:
  std::unique_ptr<Mlp> mlp_;
};

/// MLP head producing one scalar per entity (regression or binary logit).
class ScalarHead : public Module {
 public:
  ScalarHead(int64_t in_dim, Rng* rng);

  /// [n × in_dim] embeddings -> [n × 1] scalars.
  VarPtr Forward(const VarPtr& embeddings) const;

  /// Inference-only forward with the head MLP at the given precision.
  VarPtr ForwardWithPrecision(const VarPtr& embeddings,
                              Precision precision) const;

  std::vector<VarPtr> Parameters() const override;

 private:
  std::unique_ptr<Mlp> mlp_;
};

/// Two-tower link scorer: projects source and target embeddings and takes
/// the row-wise dot product as the link logit.
class LinkHead : public Module {
 public:
  LinkHead(int64_t in_dim, int64_t proj_dim, Rng* rng);

  /// Projects source-side embeddings.
  VarPtr ProjectSource(const VarPtr& embeddings) const;

  /// Projects target-side embeddings.
  VarPtr ProjectTarget(const VarPtr& embeddings) const;

  /// Row-aligned link logits from projected embeddings.
  VarPtr Score(const VarPtr& src_proj, const VarPtr& dst_proj) const;

  std::vector<VarPtr> Parameters() const override;

 private:
  std::unique_ptr<Linear> src_proj_;
  std::unique_ptr<Linear> dst_proj_;
};

}  // namespace relgraph

#endif  // RELGRAPH_GNN_HEADS_H_
